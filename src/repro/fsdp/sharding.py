"""Sharding strategies and process-group construction (Section 3.2).

The sharding factor ``F`` generalizes the strategies: ``F == 1`` is
full replication (NO_SHARD, DDP-equivalent), ``F == W`` is full
sharding, and ``1 < F < W`` is hybrid sharding, where parameters are
sharded inside groups of ``F`` ranks and replicated across the ``W/F``
complementary groups.  Gradient reduction under hybrid sharding is a
reduce-scatter over the shard group followed by an all-reduce over the
replicate group (Equation 1 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro import distributed as dist
from repro.distributed import ProcessGroup
from repro.errors import ShardingError

__all__ = ["ShardingStrategy", "ShardingPlan", "make_process_groups"]


class ShardingStrategy(enum.Enum):
    """How parameters, gradients and optimizer states are sharded."""

    #: ZeRO-3: shard everything; reshard parameters after forward.
    FULL_SHARD = "full_shard"
    #: ZeRO-2: shard gradients and optimizer states; parameters stay
    #: unsharded between forward and backward (no pre-backward
    #: AllGather — the paper's NRAF configuration).
    SHARD_GRAD_OP = "shard_grad_op"
    #: Full replication; gradients all-reduced (DDP-equivalent).
    NO_SHARD = "no_shard"
    #: FULL_SHARD within a shard group + replication across groups.
    HYBRID_SHARD = "hybrid_shard"
    #: SHARD_GRAD_OP within a shard group + replication across groups.
    HYBRID_SHARD_ZERO2 = "hybrid_shard_zero2"

    @property
    def is_hybrid(self) -> bool:
        return self in (ShardingStrategy.HYBRID_SHARD, ShardingStrategy.HYBRID_SHARD_ZERO2)

    @property
    def reshard_after_forward(self) -> bool:
        """Whether unsharded parameters are freed after forward (RAF)."""
        return self in (ShardingStrategy.FULL_SHARD, ShardingStrategy.HYBRID_SHARD)


@dataclass
class ShardingPlan:
    """Resolved process groups for one FSDP instance.

    Attributes:
        shard_group: group the FlatParameters are sharded over
            (AllGather / ReduceScatter run here); its world size is the
            sharding factor ``F``.
        replicate_group: group gradients are additionally all-reduced
            over under hybrid sharding; ``None`` otherwise.
    """

    strategy: ShardingStrategy
    shard_group: ProcessGroup
    replicate_group: Optional[ProcessGroup] = None

    @property
    def sharding_factor(self) -> int:
        return self.shard_group.world_size


def make_process_groups(
    strategy: ShardingStrategy,
    process_group: Optional[ProcessGroup] = None,
    *,
    sharding_factor: Optional[int] = None,
) -> ShardingPlan:
    """Build the shard (and replicate) groups for ``strategy``.

    For hybrid strategies the global ranks are partitioned into
    contiguous blocks of ``sharding_factor`` ranks (default: one host,
    so AllGathers stay on NVLink — Section 3.2.2); the replicate group
    joins the ranks with equal offset across blocks.
    """
    ctx_rank = dist.get_rank()
    world = dist.get_world_size()

    if strategy.is_hybrid:
        if process_group is not None:
            raise ShardingError(
                "pass sharding_factor, not process_group, for hybrid strategies"
            )
        topology = None
        if dist.is_initialized():
            from repro.distributed.api import _current

            topology = _current().topology
        factor = sharding_factor
        if factor is None:
            factor = topology.host.gpus_per_host if topology is not None else 8
        factor = min(factor, world)
        if world % factor:
            raise ShardingError(
                f"world size {world} is not divisible by sharding factor {factor}"
            )
        num_blocks = world // factor
        if num_blocks == 1:
            # Degenerate hybrid: equivalent to full sharding.
            shard = dist.new_group(range(world))
            return ShardingPlan(strategy, shard, None)
        block = ctx_rank // factor
        offset = ctx_rank % factor
        shard_ranks = range(block * factor, (block + 1) * factor)
        replicate_ranks = range(offset, world, factor)
        shard = dist.new_group(shard_ranks)
        # All F replicate groups run their all-reduces concurrently and
        # share the same host NICs.
        replicate = dist.new_group(replicate_ranks, concurrent_groups=factor)
        return ShardingPlan(strategy, shard, replicate)

    if strategy is ShardingStrategy.NO_SHARD:
        # Parameters are replicated; the "shard group" is this rank
        # alone and gradient reduction uses the full group.
        shard = dist.new_group([ctx_rank])
        reduce_group = process_group or dist.default_group()
        return ShardingPlan(strategy, shard, reduce_group)

    shard = process_group or dist.default_group()
    return ShardingPlan(strategy, shard, None)
