"""Fully Sharded Data Parallel — the paper's core contribution.

Public surface:

- :class:`FullyShardedDataParallel` (model wrapper) and
  :func:`fully_shard` (module annotator) — the two user APIs of
  Section 4;
- :class:`ShardingStrategy` — FULL_SHARD / SHARD_GRAD_OP / NO_SHARD /
  HYBRID_SHARD / HYBRID_SHARD_ZERO2 (Section 3.2);
- :class:`MixedPrecision` — native mixed precision (Section 4.4);
- :class:`BackwardPrefetch` — communication reordering (Section 3.3.2);
- auto-wrap policies, deferred initialization, state-dict helpers and
  the sharded gradient scaler.
"""

from repro.fsdp.api import FullyShardedDataParallel, fsdp_modules
from repro.fsdp.deferred_init import deferred_init, is_deferred, materialize_module
from repro.fsdp.flat_param import FlatParamHandle, FlatParameter
from repro.fsdp.fully_shard import fully_shard
from repro.fsdp.mixed_precision import BF16_MIXED, FP16_MIXED, MixedPrecision
from repro.fsdp.offload import CPUOffload
from repro.fsdp.per_param import PerParamHandle, ShardedParam
from repro.fsdp.exec_order import (
    execution_order_policy,
    plan_flat_param_groups,
    record_execution_order,
)
from repro.fsdp.optim_state import (
    full_optim_state_dict,
    load_full_optim_state_dict,
    load_sharded_optim_state_dict,
    sharded_optim_state_dict,
)
from repro.fsdp.runtime import BackwardPrefetch, FsdpRuntime, FsdpUnit, RATE_LIMIT_INFLIGHT
from repro.fsdp.sharding import ShardingPlan, ShardingStrategy, make_process_groups
from repro.fsdp.state_dict import (
    full_state_dict,
    load_full_state_dict,
    load_sharded_state_dict,
    sharded_state_dict,
)
from repro.fsdp.wrap import (
    ModuleWrapPolicy,
    WrapUnitPlan,
    describe_wrap_plan,
    policy_label,
    size_based_auto_wrap_policy,
    transformer_auto_wrap_policy,
)
from repro.optim.grad_scaler import ShardedGradScaler

__all__ = [
    "FullyShardedDataParallel",
    "fully_shard",
    "fsdp_modules",
    "FlatParameter",
    "FlatParamHandle",
    "PerParamHandle",
    "ShardedParam",
    "ShardingStrategy",
    "ShardingPlan",
    "make_process_groups",
    "MixedPrecision",
    "BF16_MIXED",
    "FP16_MIXED",
    "CPUOffload",
    "BackwardPrefetch",
    "FsdpRuntime",
    "FsdpUnit",
    "RATE_LIMIT_INFLIGHT",
    "ModuleWrapPolicy",
    "size_based_auto_wrap_policy",
    "transformer_auto_wrap_policy",
    "policy_label",
    "WrapUnitPlan",
    "describe_wrap_plan",
    "deferred_init",
    "materialize_module",
    "is_deferred",
    "full_state_dict",
    "full_optim_state_dict",
    "load_full_optim_state_dict",
    "sharded_optim_state_dict",
    "load_sharded_optim_state_dict",
    "record_execution_order",
    "plan_flat_param_groups",
    "execution_order_policy",
    "load_full_state_dict",
    "sharded_state_dict",
    "load_sharded_state_dict",
    "ShardedGradScaler",
]
