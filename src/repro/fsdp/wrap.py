"""Auto-wrap policies (Section 4.1).

A policy decides which submodules become their own FSDP units — the
knob controlling the FlatParameter granularity and hence the
memory-throughput trade-off of Section 3.2.1 (finer units lower peak
memory, more collectives).  Wrapping follows the paper's rule: all
parameters of an annotated module go to one FlatParameter, excluding
parameters already assigned to a nested unit; residual parameters go
to the parent.

:func:`describe_wrap_plan` evaluates a policy *without* constructing
any FSDP wrapper: it mirrors the post-order traversal of
``_auto_wrap`` and returns the would-be units with their parameter
counts in module-tree (≈ execution) order.  The autotune planner uses
this to cost candidate wrap plans statically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Type

from repro.nn.module import Module

__all__ = [
    "ModuleWrapPolicy",
    "size_based_auto_wrap_policy",
    "transformer_auto_wrap_policy",
    "policy_label",
    "WrapUnitPlan",
    "describe_wrap_plan",
]

Policy = Callable[[Module], bool]


def ModuleWrapPolicy(module_classes: Iterable[Type[Module]]) -> Policy:
    """Wrap every submodule that is an instance of the given classes.

    The conventional choice for transformers: wrap each block class, so
    FlatParameter boundaries align with execution order.
    """
    classes = tuple(module_classes)

    def policy(module: Module) -> bool:
        return isinstance(module, classes)

    policy.__wrap_label__ = "ModuleWrapPolicy(" + ",".join(
        c.__name__ for c in classes
    ) + ")"
    return policy


def size_based_auto_wrap_policy(
    min_num_params: int = 100_000_000,
    *,
    exclude_wrap_modules: Optional[Iterable[Type[Module]]] = None,
) -> Policy:
    """Wrap any submodule whose (unassigned) parameters exceed a size.

    Only parameters *not already assigned* to a nested wrapped unit
    count toward the threshold: ``_auto_wrap`` wraps children first
    (post-order), and the parameters of an already-wrapped child live
    in its FlatParameter.  Counting them again would make every
    ancestor of a wrapped block look oversized and wrap far too
    eagerly (one unit per level of the module tree).

    ``exclude_wrap_modules`` (default: ``ModuleList``) are never
    wrapped themselves — a ``ModuleList`` is not callable, so wrapping
    it would break ``for block in self.blocks`` iteration — but the
    traversal still descends into them, so oversized children wrap
    individually (same contract as the PyTorch policy).
    """
    if exclude_wrap_modules is None:
        from repro.nn.layers import ModuleList

        exclude_wrap_modules = (ModuleList,)
    excluded = tuple(exclude_wrap_modules)

    def policy(module: Module) -> bool:
        if isinstance(module, excluded):
            return False
        return _unassigned_numel(module) >= min_num_params

    policy.__wrap_label__ = f"size_based(min={min_num_params})"
    return policy


def _unassigned_numel(module: Module) -> int:
    """Parameters of ``module`` not owned by a nested FSDP unit.

    Nested units show up in two forms by the time a parent policy runs:
    wrapper-style (``FullyShardedDataParallel`` child whose parameters
    are FlatParameters) and composable (``fully_shard`` leaves a
    ``_fsdp_unit`` on the annotated module).  Both register
    FlatParameters, so filtering those out is exact; the module-level
    check additionally skips composable units' not-yet-flattened
    parameters when the plan is evaluated statically.
    """
    from repro.fsdp.flat_param import FlatParameter

    total = 0
    seen: set[int] = set()
    for mod in module.modules():
        if getattr(mod, "_fsdp_unit", None) is not None and mod is not module:
            # An already-wrapped nested unit (wrapper or composable):
            # everything beneath it is assigned.  Module.modules() still
            # yields its descendants, so mark them as seen.
            for sub in mod.modules():
                seen.add(id(sub))
            continue
        if id(mod) in seen:
            continue
        for param in mod._parameters.values():
            if param is None or isinstance(param, FlatParameter):
                continue
            total += param.numel
    return total


def transformer_auto_wrap_policy(block_classes: Iterable[Type[Module]]) -> Policy:
    """Alias of :func:`ModuleWrapPolicy` matching the PyTorch name."""
    return ModuleWrapPolicy(block_classes)


def policy_label(policy: Optional[Policy]) -> str:
    """Human-readable name for a policy (used in PerfResult rows)."""
    if policy is None:
        return "whole-model"
    label = getattr(policy, "__wrap_label__", None)
    if label is not None:
        return label
    return getattr(policy, "__name__", repr(policy))


# ----------------------------------------------------------------------
# Static wrap-plan introspection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WrapUnitPlan:
    """One would-be FSDP unit under a policy.

    Attributes:
        path: dotted module path ('' for the root residual unit).
        numel: parameters this unit's FlatParameter would flatten
            (excluding parameters of nested units).
        num_modules: modules contributing parameters or structure to
            this unit (a proxy for per-unit kernel-launch count).
    """

    path: str
    numel: int
    num_modules: int


def describe_wrap_plan(
    module: Module,
    policy: Optional[Policy],
    *,
    ignored_modules: Optional[list[Module]] = None,
) -> list[WrapUnitPlan]:
    """Units that wrapping ``module`` with ``policy`` would create.

    Mirrors ``_auto_wrap``'s post-order traversal without touching the
    module: children are assigned first, parents see only residual
    parameters.  The root residual unit is returned *first* (it is
    unsharded first each iteration), followed by nested units in
    module-tree order, which matches execution order for the models in
    this repository (definition order == call order).
    """
    ignored_ids: set[int] = set()
    for ignored in ignored_modules or ():
        for sub in ignored.modules():
            ignored_ids.add(id(sub))

    assigned: set[int] = set(ignored_ids)
    units: list[WrapUnitPlan] = []

    def visit(mod: Module, path: str) -> None:
        for name, child in mod._modules.items():
            if child is None or id(child) in ignored_ids:
                continue
            child_path = f"{path}.{name}" if path else name
            visit(child, child_path)
            if policy is not None and policy(child):
                numel, count = _residual_params(child, assigned)
                _mark_assigned(child, assigned)
                if numel > 0:
                    units.append(WrapUnitPlan(child_path, numel, count))

    visit(module, "")
    root_numel, root_count = _residual_params(module, assigned)
    root = WrapUnitPlan("", root_numel, root_count)
    return [root] + units


def _residual_params(module: Module, assigned: set[int]) -> tuple[int, int]:
    from repro.fsdp.flat_param import FlatParameter

    numel = 0
    count = 0
    for mod in module.modules():
        if id(mod) in assigned:
            continue
        count += 1
        for param in mod._parameters.values():
            if param is None or isinstance(param, FlatParameter):
                continue
            numel += param.numel
    return numel, count


def _mark_assigned(module: Module, assigned: set[int]) -> None:
    for mod in module.modules():
        assigned.add(id(mod))
