"""Auto-wrap policies (Section 4.1).

A policy decides which submodules become their own FSDP units — the
knob controlling the FlatParameter granularity and hence the
memory-throughput trade-off of Section 3.2.1 (finer units lower peak
memory, more collectives).  Wrapping follows the paper's rule: all
parameters of an annotated module go to one FlatParameter, excluding
parameters already assigned to a nested unit; residual parameters go
to the parent.
"""

from __future__ import annotations

from typing import Callable, Iterable, Type

from repro.nn.module import Module

__all__ = [
    "ModuleWrapPolicy",
    "size_based_auto_wrap_policy",
    "transformer_auto_wrap_policy",
]

Policy = Callable[[Module], bool]


def ModuleWrapPolicy(module_classes: Iterable[Type[Module]]) -> Policy:
    """Wrap every submodule that is an instance of the given classes.

    The conventional choice for transformers: wrap each block class, so
    FlatParameter boundaries align with execution order.
    """
    classes = tuple(module_classes)

    def policy(module: Module) -> bool:
        return isinstance(module, classes)

    return policy


def size_based_auto_wrap_policy(min_num_params: int = 100_000_000) -> Policy:
    """Wrap any submodule whose (unassigned) parameters exceed a size."""

    def policy(module: Module) -> bool:
        return sum(p.numel for p in module.parameters()) >= min_num_params

    return policy


def transformer_auto_wrap_policy(block_classes: Iterable[Type[Module]]) -> Policy:
    """Alias of :func:`ModuleWrapPolicy` matching the PyTorch name."""
    return ModuleWrapPolicy(block_classes)
