"""FlatParameter and FlatParamHandle (Sections 3.2.1, 3.2.3, 4.2).

One :class:`FlatParameter` coalesces all parameters of one FSDP unit
into a single padded 1-D tensor via the flatten-concat-chunk algorithm:

- concatenate the flattened originals, right-pad to a multiple of the
  sharding factor ``F`` (padding is at most ``F - 1``);
- each rank permanently keeps only its ``1/F`` chunk (the *local
  shard*) in full precision;
- before compute, the chunks are AllGathered into a persistent
  *unsharded storage* whose identity never changes — views saved by
  autograd keep aliasing it across release/reallocate cycles, exactly
  like ``storage().resize_(0)`` in the reference implementation;
- the original parameters become autograd-visible ``split``/``view``
  aliases of the unsharded FlatParameter, so the engine naturally
  assembles the *unsharded* FlatParameter gradient and fires the
  post-accumulate-grad hook once it is finalized, where FSDP launches
  ReduceScatter.

The handle also implements the mixed-precision dance of Section 4.4
(low-precision shard cast + low-precision collectives, full-precision
sharded copy retained for the optimizer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import dtypes, ops
from repro.autograd.grad_mode import no_grad
from repro.cuda.device import Device
from repro.cuda.stream import Event, Stream
from repro.distributed import ProcessGroup, ReduceOp, Work
from repro.errors import FsdpError
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.storage import Storage
from repro.tensor import Tensor

__all__ = ["FlatParameter", "FlatParamHandle", "ParamInfo", "ReduceJob"]


@dataclass
class ReduceJob:
    """One unit's staged contribution to a coalesced ReduceScatter.

    ``output``/``input`` are the pair handed to
    ``reduce_scatter_tensor_coalesced``; ``finish(work, stream)`` runs
    after the bucket collective is enqueued (same stream context) and
    performs the per-unit tail: hybrid-shard AllReduce, precision cast
    back, stash-accumulate.  It returns the Work the unit should track.
    """

    output: Tensor
    input: Tensor
    finish: "Callable[[Optional[Work], Stream], Optional[Work]]"


class FlatParameter(Parameter):
    """The 1-D coalesced parameter owning an FSDP unit's storage."""

    __slots__ = ()


@dataclass
class ParamInfo:
    """Where one original parameter lives inside the FlatParameter."""

    module: Module
    name: str
    shape: tuple[int, ...]
    numel: int
    offset: int
    fqn: str = ""


class FlatParamHandle:
    """Manages one FlatParameter's shard/unshard lifecycle."""

    is_per_param = False

    def __init__(
        self,
        params: Sequence[tuple[Module, str, Parameter]],
        device: Device,
        shard_group: ProcessGroup,
        *,
        param_dtype: Optional[dtypes.DType] = None,
        reduce_dtype: Optional[dtypes.DType] = None,
        keep_low_precision_grads: bool = False,
        offload_params: bool = False,
        label: str = "",
    ):
        if not params:
            raise FsdpError("FlatParamHandle requires at least one parameter")
        self.device = device
        self.shard_group = shard_group
        self.label = label

        unique: dict[int, Parameter] = {}
        bindings: list[tuple[Module, str, int]] = []  # (module, name, param id)
        for module, name, param in params:
            if id(param) not in unique:
                unique[id(param)] = param
            bindings.append((module, name, id(param)))
        originals = list(unique.values())

        full_dtype = originals[0].dtype
        for p in originals:
            if p.dtype is not full_dtype:
                raise FsdpError("all parameters in one FSDP unit must share a dtype")
            if not p.is_materialized and device.materialize_data:
                raise FsdpError("parameters must be materialized before flattening")
        self.full_precision_dtype = full_dtype
        self.compute_dtype = param_dtype or full_dtype
        self.reduce_dtype = reduce_dtype or self.compute_dtype
        self.keep_low_precision_grads = keep_low_precision_grads
        self.offload_params = offload_params

        # --- flatten-concat-chunk -------------------------------------
        offsets: list[int] = []
        total = 0
        for p in originals:
            offsets.append(total)
            total += p.numel
        factor = shard_group.world_size
        self.total_numel = total
        self.padded_numel = (total + factor - 1) // factor * factor
        self.padding = self.padded_numel - total
        self.shard_numel = self.padded_numel // factor
        self.sharding_factor = factor

        self.param_infos: list[ParamInfo] = []
        id_to_index = {id(p): i for i, p in enumerate(originals)}
        for module, name, pid in bindings:
            index = id_to_index[pid]
            p = originals[index]
            self.param_infos.append(
                ParamInfo(module, name, p.shape, p.numel, offsets[index], name)
            )
        self._unique_infos = [
            ParamInfo(None, "", p.shape, p.numel, offsets[i])
            for i, p in enumerate(originals)
        ]

        requires_grad = any(p.requires_grad for p in originals)
        self._build_storages(originals, requires_grad)
        self._deregister_and_bind()

        # Runtime state -------------------------------------------------
        self.is_unsharded = not self.needs_unshard
        self._saved_grad_shard: Optional[Tensor] = None
        self._unsharded_grad_accum: Optional[Tensor] = None
        self._views: list[Tensor] = []

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------
    @property
    def needs_unshard(self) -> bool:
        return (
            self.sharding_factor > 1
            or self.compute_dtype is not self.full_precision_dtype
            or self.offload_params
        )

    def _build_storages(self, originals: Sequence[Parameter], requires_grad: bool) -> None:
        device = self.device
        with no_grad():
            flats = [ops.view(p.detach(), (p.numel,)) for p in originals]
            full_flat = ops.cat(flats, 0) if len(flats) > 1 else flats[0]
            full_flat = ops.pad_right(full_flat, self.padding)
            start = self.shard_group.rank * self.shard_numel
            local_shard = ops.clone(ops.narrow(full_flat, 0, start, self.shard_numel))
        del full_flat, flats
        # Release the originals' storage: their data now lives in the
        # shards across the group.
        for p in originals:
            p._storage.free()

        if self.offload_params:
            # CPU offloading: the permanent full-precision shard lives
            # in host memory; a released device staging buffer receives
            # the H2D copy before each AllGather.
            from repro.cuda.device import cpu_device

            with no_grad():
                local_shard = ops.to_device(local_shard, cpu_device())
            self._staged_shard_storage: Optional[Storage] = Storage(
                device, self.full_precision_dtype, self.shard_numel
            )
            self._staged_shard = Tensor(
                self._staged_shard_storage, (self.shard_numel,)
            )
            self._staged_shard_storage.release()
        else:
            self._staged_shard_storage = None
            self._staged_shard = None

        self.flat_param = FlatParameter(local_shard, requires_grad=requires_grad)

        if self.needs_unshard:
            self._unsharded_storage = Storage(
                device, self.compute_dtype, self.padded_numel
            )
            self._unsharded_flat = Tensor(self._unsharded_storage, (self.padded_numel,))
            self._unsharded_storage.release()
        else:
            # NO_SHARD in full precision: the local shard *is* the full
            # flat parameter; no second copy exists.
            self._unsharded_storage = local_shard._storage
            self._unsharded_flat = local_shard

        if self.compute_dtype is not self.full_precision_dtype:
            self._mp_shard_storage: Optional[Storage] = Storage(
                device, self.compute_dtype, self.shard_numel
            )
            self._mp_shard = Tensor(self._mp_shard_storage, (self.shard_numel,))
            self._mp_shard_storage.release()
        else:
            self._mp_shard_storage = None
            self._mp_shard = None

        self._local_shard = local_shard

    def _deregister_and_bind(self) -> None:
        """Remove originals from module registries; bind alias views.

        The placeholder views alias the (currently released) unsharded
        storage so attribute access stays wired; they carry valid data
        whenever the handle is unsharded.
        """
        for info in self.param_infos:
            info.module._parameters.pop(info.name, None)
            placeholder = Tensor(
                self._unsharded_storage,
                info.shape,
                offset=info.offset,
                dtype=self.compute_dtype,
            )
            object.__setattr__(info.module, info.name, placeholder)

    # ------------------------------------------------------------------
    # Unshard / reshard
    # ------------------------------------------------------------------
    def unshard(self, stream: Optional[Stream] = None) -> Optional[Event]:
        """AllGather the shards into the unsharded storage.

        Runs entirely on ``stream`` (the producer/communication
        stream): the destination tensor is allocated there, which is
        the allocator behaviour Section 3.4's rate limiter exists to
        tame.  Returns the completion event, or None if already
        unsharded.
        """
        if self.is_unsharded:
            return None
        device = self.device
        ad_hoc = stream is None
        if ad_hoc:
            # Ad-hoc unshard (summon_full_params, state-dict): nothing
            # upstream ordered the comm stream after the producer of the
            # local shard (e.g. the optimizer step on the compute
            # stream), so insert the NCCL-style implicit edge here.  The
            # runtime's overlap path passes its own stream and manages
            # ordering via begin_iteration.
            stream = self.shard_group.comm_stream
            current = device.current_stream
            if current is not None and current is not stream:
                stream.wait_stream(current)
        with device.stream(stream), no_grad():
            source = self._local_shard
            if self.offload_params:
                self._staged_shard_storage.reallocate()
                self._h2d_copy(self._staged_shard, self._local_shard, stream)
                source = self._staged_shard
            if self._mp_shard is not None:
                self._mp_shard_storage.reallocate()
                self._mp_shard.copy_(source)
                gather_input = self._mp_shard
            else:
                gather_input = source
            self._unsharded_storage.reallocate()
            if self.sharding_factor > 1:
                self.shard_group.all_gather_into_tensor(
                    self._unsharded_flat, gather_input, stream=stream
                )
            else:
                self._unsharded_flat.copy_(gather_input)
            if self._mp_shard is not None:
                self._mp_shard_storage.release()
            if self.offload_params:
                self._staged_shard_storage.release()
        event = stream.record_event()
        if ad_hoc:
            # The caller computes on its own (usually the default)
            # stream right away and never sees the event, so close the
            # ordering loop here — the same wait summon_full_params
            # performs in PyTorch after an out-of-band unshard.
            consumer = device.current_stream or device.default_stream
            if consumer is not stream:
                consumer.wait_event(event)
        self.is_unsharded = True
        return event

    def unshard_pair(self, stream: Stream) -> Optional[tuple[Tensor, Tensor]]:
        """Stage this handle for a *bucketed* AllGather.

        The compiled executor merges several units' gathers into one
        ``all_gather_into_tensor_coalesced``; this performs everything
        the eager :meth:`unshard` does up to the collective (mixed-
        precision cast, unsharded storage reallocation) and returns the
        ``(output, input)`` pair for the bucket.  The caller holds
        ``device.stream(stream)`` / ``no_grad`` and must call
        :meth:`unshard_commit` after enqueueing the collective.

        Returns None when this handle cannot join a bucket (already
        unsharded, unsharded with ``F == 1``, or CPU offload) — the
        caller falls back to a plain :meth:`unshard`.
        """
        if self.is_unsharded or self.sharding_factor <= 1 or self.offload_params:
            return None
        source = self._local_shard
        if self._mp_shard is not None:
            self._mp_shard_storage.reallocate()
            self._mp_shard.copy_(source)
            gather_input = self._mp_shard
        else:
            gather_input = source
        self._unsharded_storage.reallocate()
        return (self._unsharded_flat, gather_input)

    def unshard_commit(self) -> None:
        """Finish a bucketed unshard once the collective is enqueued."""
        if self._mp_shard is not None:
            self._mp_shard_storage.release()
        self.is_unsharded = True

    def reshard(self) -> bool:
        """Free the unsharded storage; point the FlatParameter at its shard.

        Returns True when storage was actually released.
        """
        if not self.needs_unshard or not self.is_unsharded:
            return False
        self._unsharded_storage.release()
        self.flat_param.data = self._local_shard
        self.is_unsharded = False
        return True

    def use_unsharded_views(self) -> None:
        """Rebuild the original parameters as views of the FlatParameter.

        The split/view calls are autograd-visible, so gradient flow
        naturally targets the unsharded FlatParameter gradient
        (Section 3.2.3).  Must be called with the handle unsharded.
        """
        if not self.is_unsharded:
            raise FsdpError(f"cannot create views while sharded ({self.label})")
        if self.needs_unshard:
            self.flat_param.data = self._unsharded_flat
        sections = [info.numel for info in self._unique_infos]
        if self.padding:
            sections.append(self.padding)
        pieces = ops.split(self.flat_param, sections)
        views_by_offset: dict[int, Tensor] = {}
        for info, piece in zip(self._unique_infos, pieces):
            views_by_offset[info.offset] = ops.view(piece, info.shape)
        self._views = list(views_by_offset.values())
        for info in self.param_infos:
            object.__setattr__(info.module, info.name, views_by_offset[info.offset])

    # ------------------------------------------------------------------
    # Gradient handling
    # ------------------------------------------------------------------
    def prepare_gradient_for_backward(self) -> None:
        """Stash any sharded gradient so unsharded accumulation is clean.

        Without this, the engine would try to add an unsharded gradient
        onto last iteration's sharded one (gradient accumulation *with*
        communication keeps sharded grads across iterations,
        Section 3.3.4).
        """
        grad = self.flat_param.grad
        if grad is not None and grad.numel == self.shard_numel and self.needs_unshard:
            with no_grad():
                if self._saved_grad_shard is not None:
                    grad = grad + self._saved_grad_shard
            self._saved_grad_shard = grad
            self.flat_param.grad = None

    def reduce_grad(
        self,
        stream: Stream,
        *,
        replicate_group: Optional[ProcessGroup] = None,
        no_sync: bool = False,
    ) -> Optional[Work]:
        """Post-backward gradient path: ReduceScatter (+AllReduce).

        With ``no_sync`` the unsharded gradient is accumulated locally
        and no communication happens (accumulate-without-communication,
        Section 3.3.4).
        """
        grad = self.flat_param.grad
        self.flat_param.grad = None
        if grad is None:
            return None
        device = self.device

        with no_grad():
            if self._unsharded_grad_accum is not None:
                grad = grad + self._unsharded_grad_accum
                self._unsharded_grad_accum = None
            if no_sync:
                self._unsharded_grad_accum = grad
                return None

            with device.stream(stream):
                # The gradient was produced on the compute stream; the
                # reduction must not start before it is final.
                stream.wait_stream(device.default_stream)
                if grad.dtype is not self.reduce_dtype:
                    grad = ops.cast(grad, self.reduce_dtype)
                work: Optional[Work] = None
                if self.sharding_factor > 1:
                    from repro.tensor import empty

                    new_shard = empty(
                        self.shard_numel, dtype=self.reduce_dtype, device=device
                    )
                    work = self.shard_group.reduce_scatter_tensor(
                        new_shard, grad, op=ReduceOp.AVG, stream=stream
                    )
                else:
                    new_shard = grad
                if replicate_group is not None and replicate_group.world_size > 1:
                    work = replicate_group.all_reduce(
                        new_shard, op=ReduceOp.AVG, stream=stream
                    )
                if (
                    new_shard.dtype is not self.full_precision_dtype
                    and not self.keep_low_precision_grads
                ):
                    new_shard = ops.cast(new_shard, self.full_precision_dtype)
                if not self.offload_params and self._saved_grad_shard is not None:
                    # Accumulate into the stash *on the reduction
                    # stream*: ``new_shard`` is produced by the
                    # ReduceScatter enqueued just above, so launching
                    # this add on the compute stream would read it with
                    # no ordering edge (a race the stream-order
                    # sanitizer flags under REPRO_SANITIZER=1).
                    new_shard = new_shard + self._saved_grad_shard

            if self.offload_params:
                # The optimizer runs on host shards: move the reduced
                # gradient shard D2H (PCIe cost on the comm stream).
                from repro.cuda.device import cpu_device
                from repro.hw.kernel_model import KernelCost

                pcie = 25e9
                device.launch(
                    KernelCost(
                        bytes_moved=new_shard.nbytes
                        * (device.spec.mem_bandwidth / pcie)
                    ),
                    new_shard.dtype,
                    stream=stream,
                    reads=(new_shard._storage,),
                    label="d2h",
                )
                new_shard = ops.to_device(new_shard, cpu_device())
                # Host-side accumulate: safe only after the D2H copy
                # above, which runs on the reduction stream.
                if self._saved_grad_shard is not None:
                    new_shard = new_shard + self._saved_grad_shard

        # Park the reduced shard instead of assigning ``.grad``: more
        # unsharded contributions may still arrive in this backward
        # (e.g. a parent unit's parameters used inside several
        # activation-checkpoint GraphTasks fire AccumulateGrad once per
        # recompute).  The end-of-backward callback moves the stash
        # into ``.grad`` for the optimizer.
        self._saved_grad_shard = new_shard.detach()
        return work

    def reduce_grad_pair(
        self, *, replicate_group: Optional[ProcessGroup] = None
    ) -> Optional[ReduceJob]:
        """Stage this unit's gradient reduction for a coalesced bucket.

        Performs everything :meth:`reduce_grad` does before the
        ReduceScatter (accumulate pending contributions, cast to the
        reduce dtype, allocate the destination shard) and defers the
        rest into the returned job's ``finish``.  The caller holds
        ``device.stream(stream)`` / ``no_grad`` and has already ordered
        the stream after the compute stream.

        Returns None when no bucket collective is needed (no gradient,
        ``F == 1``, or CPU offload); the caller falls back to
        :meth:`reduce_grad`, which handles those cases eagerly.
        """
        if self.sharding_factor <= 1 or self.offload_params:
            return None
        grad = self.flat_param.grad
        if grad is None:
            return None
        self.flat_param.grad = None
        if self._unsharded_grad_accum is not None:
            grad = grad + self._unsharded_grad_accum
            self._unsharded_grad_accum = None
        if grad.dtype is not self.reduce_dtype:
            grad = ops.cast(grad, self.reduce_dtype)
        from repro.tensor import empty

        new_shard = empty(self.shard_numel, dtype=self.reduce_dtype, device=self.device)

        def finish(work: Optional[Work], stream: Stream) -> Optional[Work]:
            shard = new_shard
            if replicate_group is not None and replicate_group.world_size > 1:
                work = replicate_group.all_reduce(shard, op=ReduceOp.AVG, stream=stream)
            if (
                shard.dtype is not self.full_precision_dtype
                and not self.keep_low_precision_grads
            ):
                shard = ops.cast(shard, self.full_precision_dtype)
            if self._saved_grad_shard is not None:
                # Stash-accumulate on the reduction stream (see
                # reduce_grad for the ordering rationale).
                shard = shard + self._saved_grad_shard
            self._saved_grad_shard = shard.detach()
            return work

        return ReduceJob(new_shard, grad, finish)

    def _h2d_copy(self, device_dst: Tensor, host_src: Tensor, stream: Stream) -> None:
        """Host-to-device copy over PCIe (data + simulated transfer time)."""
        from repro.hw.kernel_model import KernelCost

        if device_dst.is_materialized and host_src.is_materialized:
            device_dst._np[...] = host_src._np
        gpu = self.device
        # Scale bytes so the roofline yields bytes / PCIe bandwidth.
        pcie = 25e9
        gpu.launch(
            KernelCost(bytes_moved=device_dst.nbytes * (gpu.spec.mem_bandwidth / pcie)),
            device_dst.dtype,
            stream=stream,
            writes=(device_dst._storage,),
            label="h2d",
        )

    def writeback_unsharded_to_shard(self) -> None:
        """Scatter this rank's slice of the unsharded data into its shard.

        Supports ``summon_full_params(writeback=True)``: edits made
        through the unsharded views persist.  With mixed precision the
        views are in compute precision, so the writeback is a cast.
        """
        if not self.needs_unshard or not self.is_unsharded:
            return
        start = self.shard_group.rank * self.shard_numel
        with no_grad():
            my_slice = Tensor(
                self._unsharded_storage,
                (self.shard_numel,),
                offset=start,
                dtype=self.compute_dtype,
            )
            self._local_shard.copy_(my_slice)

    def gather_full_precision(self) -> Tensor:
        """AllGather the *full-precision* shards into a fresh tensor.

        Used by full state-dict collection; the caller drops the result
        when done (it is independent of the unsharded compute storage).
        """
        from repro.tensor import empty

        if self.sharding_factor == 1:
            return ops.clone(self._local_shard)
        with no_grad():
            full = empty(
                self.padded_numel, dtype=self.full_precision_dtype, device=self.device
            )
            work = self.shard_group.all_gather_into_tensor(full, self._local_shard)
            work.wait()
        return full

    def restore_stashed_gradient(self) -> None:
        """Put back a stashed sharded grad if no reduction consumed it."""
        if self._saved_grad_shard is not None and self.flat_param.grad is None:
            self.flat_param.grad = self._saved_grad_shard
            self._saved_grad_shard = None

    # ------------------------------------------------------------------
    # Post-backward signalling (shared surface with PerParamHandle)
    # ------------------------------------------------------------------
    def register_post_backward(self, callback):
        """Fire ``callback`` when the unit's gradient is finalized.

        For the flat backend that is simply the FlatParameter's
        post-accumulate-grad hook; the per-parameter backend counts
        individual parameter gradients instead.
        """
        if not self.flat_param.requires_grad:
            return None
        return self.flat_param.register_post_accumulate_grad_hook(callback)

    def flush_post_backward(self) -> bool:
        """The flat backend never leaves partial gradient counts."""
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def optim_state_nbytes(self, optimizer) -> int:
        """Bytes of optimizer state attached to the FlatParameter."""
        state = optimizer.state.get(id(self.flat_param))
        if not state:
            return 0
        return sum(
            value.nbytes for value in state.values() if isinstance(value, Tensor)
        )

    @property
    def unsharded_nbytes(self) -> int:
        return self.padded_numel * self.compute_dtype.itemsize

    @property
    def sharded_nbytes(self) -> int:
        return self.shard_numel * self.full_precision_dtype.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlatParamHandle({self.label or 'unit'}, numel={self.total_numel}, "
            f"padded={self.padded_numel}, F={self.sharding_factor}, "
            f"unsharded={self.is_unsharded})"
        )
