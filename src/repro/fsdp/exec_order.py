"""Execution-order-driven FlatParameter planning (Section 4.2).

The paper describes an explored alternative to module-annotation
wrapping: run one (possibly inefficient) iteration while *observing the
execution order*, then reconstruct FlatParameters by coalescing
parameters along that order into well-sized groups.  This module
provides that machinery:

- :func:`record_execution_order` — run the model once with forward
  pre-hooks and return parameter-owning modules in first-use order;
- :func:`plan_flat_param_groups` — greedily coalesce consecutive
  modules into groups whose total parameter count approaches a target
  (the ``max ψ_i`` knob of the §3.2.1 memory bound);
- :func:`execution_order_policy` — an ``auto_wrap_policy`` that wraps
  the *last* module of each planned group's subtree... since units are
  module-rooted in the frontends, the policy marks each planned group
  leader; arbitrary multi-module groups can be built directly with
  :class:`~repro.fsdp.flat_param.FlatParamHandle`, which accepts any
  list of ``(module, name, param)`` triples.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.autograd.grad_mode import no_grad
from repro.nn.module import Module

__all__ = [
    "record_execution_order",
    "plan_flat_param_groups",
    "execution_order_policy",
]


def _own_param_numel(module: Module) -> int:
    return sum(p.numel for p in module._parameters.values() if p is not None)


def record_execution_order(model: Module, run: Callable[[Module], object]) -> list[Module]:
    """Observe the order in which parameter-owning modules first execute.

    ``run(model)`` should perform one representative forward pass (it
    executes under ``no_grad``).  Returns the modules that directly own
    at least one parameter, ordered by first use.
    """
    order: list[Module] = []
    seen: set[int] = set()
    handles = []

    def make_hook(module: Module):
        def hook(mod, args):
            if id(module) not in seen:
                seen.add(id(module))
                order.append(module)
            return None

        return hook

    for module in model.modules():
        if _own_param_numel(module) > 0:
            handles.append(module.register_forward_pre_hook(make_hook(module)))
    try:
        with no_grad():
            run(model)
    finally:
        for handle in handles:
            handle.remove()
    # Modules never executed (e.g. unused heads) are appended at the
    # end so every parameter still lands in some group.
    for module in model.modules():
        if _own_param_numel(module) > 0 and id(module) not in seen:
            seen.add(id(module))
            order.append(module)
    return order


def plan_flat_param_groups(
    ordered_modules: Sequence[Module], target_numel: int
) -> list[list[Module]]:
    """Coalesce consecutive modules into groups of ~``target_numel``.

    Greedy: extend the current group while it stays under the target;
    a single module larger than the target forms its own group.  The
    result controls the §3.2.1 trade-off — larger targets mean fewer
    collectives but a larger ``max ψ_i`` peak contribution.
    """
    if target_numel <= 0:
        raise ValueError("target_numel must be positive")
    groups: list[list[Module]] = []
    current: list[Module] = []
    current_numel = 0
    for module in ordered_modules:
        numel = _own_param_numel(module)
        if current and current_numel + numel > target_numel:
            groups.append(current)
            current, current_numel = [], 0
        current.append(module)
        current_numel += numel
    if current:
        groups.append(current)
    return groups


def execution_order_policy(
    model: Module, run: Callable[[Module], object], target_numel: int
) -> Callable[[Module], bool]:
    """An ``auto_wrap_policy`` derived from one observed iteration.

    Marks the subtree roots whose own-plus-descendant parameters fit
    the target; the frontends then form one FlatParameter per marked
    module, approximating the planned grouping with module-rooted
    units.
    """
    order = record_execution_order(model, run)
    groups = plan_flat_param_groups(order, target_numel)
    chosen: set[int] = set()
    for group in groups:
        for module in group:
            chosen.add(id(module))

    def policy(module: Module) -> bool:
        if id(module) in chosen:
            return True
        total = sum(p.numel for p in module.parameters())
        return 0 < total <= target_numel and any(
            id(sub) in chosen for sub in module.modules()
        )

    return policy
