"""Execution-order-driven FlatParameter planning (Section 4.2).

The paper describes an explored alternative to module-annotation
wrapping: run one (possibly inefficient) iteration while *observing the
execution order*, then reconstruct FlatParameters by coalescing
parameters along that order into well-sized groups.  This module
provides that machinery:

- :func:`record_execution_order` — run the model once with forward
  pre-hooks and return parameter-owning modules in first-use order;
- :func:`plan_flat_param_groups` — greedily coalesce consecutive
  modules into groups whose total parameter count approaches a target
  (the ``max ψ_i`` knob of the §3.2.1 memory bound);
- :func:`execution_order_policy` — an ``auto_wrap_policy`` that wraps
  the *last* module of each planned group's subtree... since units are
  module-rooted in the frontends, the policy marks each planned group
  leader; arbitrary multi-module groups can be built directly with
  :class:`~repro.fsdp.flat_param.FlatParamHandle`, which accepts any
  list of ``(module, name, param)`` triples.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.autograd.grad_mode import no_grad
from repro.errors import ExecOrderViolation
from repro.nn.module import Module

__all__ = [
    "ExecOrderValidator",
    "record_execution_order",
    "plan_flat_param_groups",
    "execution_order_policy",
]


class ExecOrderValidator:
    """Cross-iteration execution-order checking (Section 3.3.2).

    Both prefetching modes assume the set and order of FSDP units is
    static across iterations: backward prefetching replays the reverse
    of the observed pre-forward order, forward prefetching replays the
    previous iteration's order.  A model that conditionally skips a
    submodule silently breaks that assumption — prefetch targets the
    wrong unit and the AllGather pipeline degrades (or gathers
    parameters nothing will consume).

    The validator runs in two modes:

    - **warmup** (first iteration): record each unit's *module name* as
      it unshards;
    - **validation** (every later iteration): each unshard must match
      the recorded order positionally, and at the start of the next
      iteration every recorded unit must have been seen.

    Divergence raises :class:`~repro.errors.ExecOrderViolation` naming
    the expected and actual modules (never bare indices).  Checking is
    active only while ``repro.cuda.sanitizer`` is enabled; otherwise the
    validator observes silently, so production-shaped runs keep the
    seed's permissive behaviour.
    """

    def __init__(self):
        self.expected: list[str] = []
        self.iteration = 0
        self.mode = "warmup"
        self._position = 0

    def reset(self) -> None:
        """Forget everything and return to warmup.

        Called after elastic recovery: the rebuilt runtime may
        legitimately observe a different order (e.g. a resized group).
        """
        self.expected = []
        self.iteration = 0
        self.mode = "warmup"
        self._position = 0

    def start_iteration(self) -> None:
        """Close out the previous iteration and arm the next one."""
        if self.mode == "validate" and 0 < self._position < len(self.expected):
            missing = ", ".join(repr(n) for n in self.expected[self._position :])
            self._violation(
                f"iteration {self.iteration} never unsharded unit(s) {missing} "
                f"recorded during warmup — a conditionally-skipped submodule "
                f"breaks prefetching's static-graph assumption "
                f"(saw {self._position} of {len(self.expected)} units)",
                expected=self.expected[self._position],
                actual=None,
                position=self._position,
            )
        self.iteration += 1
        if self.mode == "warmup" and self.expected and self.iteration > 1:
            self.mode = "validate"
        self._position = 0

    def record_unshard(self, name: str) -> None:
        """One unit (identified by module name) reached pre-forward."""
        if self.mode == "warmup":
            self.expected.append(name)
            return
        position = self._position
        self._position += 1
        if position >= len(self.expected):
            self._violation(
                f"unit {name!r} unsharded at position {position} of iteration "
                f"{self.iteration}, but warmup recorded only "
                f"{len(self.expected)} unit(s)",
                expected=None,
                actual=name,
                position=position,
            )
        elif self.expected[position] != name:
            self._violation(
                f"execution order diverged at position {position} of iteration "
                f"{self.iteration}: expected unit {self.expected[position]!r} "
                f"(recorded during warmup) but {name!r} ran — prefetching "
                f"would target the wrong unit",
                expected=self.expected[position],
                actual=name,
                position=position,
            )

    def _violation(
        self,
        message: str,
        *,
        expected: Optional[str],
        actual: Optional[str],
        position: int,
    ) -> None:
        from repro.cuda import sanitizer

        san = sanitizer.active()
        if san is None:
            return
        violation = ExecOrderViolation(
            message, expected=expected, actual=actual, position=position
        )
        san.violations.append(violation)
        if san.raise_on_violation:
            raise violation


def _own_param_numel(module: Module) -> int:
    return sum(p.numel for p in module._parameters.values() if p is not None)


def record_execution_order(model: Module, run: Callable[[Module], object]) -> list[Module]:
    """Observe the order in which parameter-owning modules first execute.

    ``run(model)`` should perform one representative forward pass (it
    executes under ``no_grad``).  Returns the modules that directly own
    at least one parameter, ordered by first use.
    """
    order: list[Module] = []
    seen: set[int] = set()
    handles = []

    def make_hook(module: Module):
        def hook(mod, args):
            if id(module) not in seen:
                seen.add(id(module))
                order.append(module)
            return None

        return hook

    for module in model.modules():
        if _own_param_numel(module) > 0:
            handles.append(module.register_forward_pre_hook(make_hook(module)))
    try:
        with no_grad():
            run(model)
    finally:
        for handle in handles:
            handle.remove()
    # Modules never executed (e.g. unused heads) are appended at the
    # end so every parameter still lands in some group.
    for module in model.modules():
        if _own_param_numel(module) > 0 and id(module) not in seen:
            seen.add(id(module))
            order.append(module)
    return order


def plan_flat_param_groups(
    ordered_modules: Sequence[Module], target_numel: int
) -> list[list[Module]]:
    """Coalesce consecutive modules into groups of ~``target_numel``.

    Greedy: extend the current group while it stays under the target;
    a single module larger than the target forms its own group.  The
    result controls the §3.2.1 trade-off — larger targets mean fewer
    collectives but a larger ``max ψ_i`` peak contribution.
    """
    if target_numel <= 0:
        raise ValueError("target_numel must be positive")
    groups: list[list[Module]] = []
    current: list[Module] = []
    current_numel = 0
    for module in ordered_modules:
        numel = _own_param_numel(module)
        if current and current_numel + numel > target_numel:
            groups.append(current)
            current, current_numel = [], 0
        current.append(module)
        current_numel += numel
    if current:
        groups.append(current)
    return groups


def execution_order_policy(
    model: Module, run: Callable[[Module], object], target_numel: int
) -> Callable[[Module], bool]:
    """An ``auto_wrap_policy`` derived from one observed iteration.

    Marks the subtree roots whose own-plus-descendant parameters fit
    the target; the frontends then form one FlatParameter per marked
    module, approximating the planned grouping with module-rooted
    units.
    """
    order = record_execution_order(model, run)
    groups = plan_flat_param_groups(order, target_numel)
    chosen: set[int] = set()
    for group in groups:
        for module in group:
            chosen.add(id(module))

    def policy(module: Module) -> bool:
        if id(module) in chosen:
            return True
        total = sum(p.numel for p in module.parameters())
        return 0 < total <= target_numel and any(
            id(sub) in chosen for sub in module.modules()
        )

    return policy
