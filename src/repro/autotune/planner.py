"""The sharding-configuration planner.

:func:`plan_sharding` enumerates a :class:`SearchSpace` for one
:class:`TuneWorkload`, prices every candidate with the static memory
estimator and the analytic latency predictor, prunes candidates whose
predicted peak exceeds the memory budget, ranks the survivors by
predicted iteration latency, and (optionally) validates the top-k by
running :func:`repro.perf.simulate_training` on them.  The winner is
returned as an :class:`AutotunePlan` ready for ``SimConfig(plan=...)``
or ``FSDP(model, **plan.fsdp_kwargs())``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fsdp.sharding import ShardingStrategy
from repro.perf.trainer import simulate_training

from repro.autotune.memory import estimate_peak_memory
from repro.autotune.predict import build_unit_work, predict_iteration_latency
from repro.autotune.space import AutotunePlan, Candidate, SearchSpace
from repro.autotune.workloads import TuneWorkload

__all__ = ["SearchResult", "default_search_space", "evaluate_candidate", "plan_sharding"]


def default_search_space(workload: TuneWorkload) -> SearchSpace:
    """The stock space: every wrap choice x strategy family x knobs.

    Hybrid strategies pair with the workload's host size (the paper's
    default) and, when the world spans several hosts, with a two-host
    shard group as a middle point.
    """
    world = workload.world_size
    per_host = min(world, workload.topology.host.gpus_per_host)
    strategies: list[tuple[ShardingStrategy, Optional[int]]] = [
        (ShardingStrategy.FULL_SHARD, None),
        (ShardingStrategy.SHARD_GRAD_OP, None),
    ]
    if world > per_host:
        strategies.append((ShardingStrategy.HYBRID_SHARD, per_host))
        strategies.append((ShardingStrategy.HYBRID_SHARD_ZERO2, per_host))
        if world >= 4 * per_host:
            strategies.append((ShardingStrategy.HYBRID_SHARD, 2 * per_host))
    if world == 1:
        strategies = [(ShardingStrategy.NO_SHARD, None)]
    return SearchSpace(
        wrap_choices=list(workload.wrap_choices),
        strategies=strategies,
        checkpointing=workload.checkpointing_options(),
    )


def evaluate_candidate(workload: TuneWorkload, candidate: Candidate) -> AutotunePlan:
    """Price one candidate analytically (no simulation)."""
    units = workload.wrap_plan(candidate.wrap)
    memory = estimate_peak_memory(
        units,
        workload.trace,
        world_size=workload.world_size,
        strategy=candidate.strategy,
        sharding_factor=candidate.sharding_factor,
        limit_all_gathers=candidate.limit_all_gathers,
        rate_limit_inflight=candidate.rate_limit_inflight,
        checkpointing=candidate.checkpointing,
        compute_itemsize=candidate.compute_itemsize,
        reduce_itemsize=candidate.reduce_itemsize,
        gpus_per_host=workload.topology.host.gpus_per_host,
        extra_persistent_bytes=workload.extra_persistent_bytes,
    )
    work = build_unit_work(
        units,
        workload.trace,
        topology=workload.topology,
        world_size=workload.world_size,
        strategy=candidate.strategy,
        sharding_factor=candidate.sharding_factor,
        checkpointing=candidate.checkpointing,
        compute_itemsize=candidate.compute_itemsize,
        reduce_itemsize=candidate.reduce_itemsize,
        compute_dtype=(
            candidate.mixed_precision.param_dtype
            if candidate.mixed_precision is not None
            else None
        ),
    )
    latency = predict_iteration_latency(
        work,
        backward_prefetch=candidate.backward_prefetch,
        forward_prefetch=candidate.forward_prefetch,
        limit_all_gathers=candidate.limit_all_gathers,
        rate_limit_inflight=candidate.rate_limit_inflight,
        extra_serial_s=workload.extra_serial_s,
    )
    return AutotunePlan(
        candidate=candidate,
        memory=memory,
        latency=latency,
        build_model=workload.builders.get(
            candidate.checkpointing, workload.builders[workload.checkpointing_options()[0]]
        ),
    )


@dataclass
class SearchResult:
    """Everything :func:`plan_sharding` learned about the space."""

    workload: str
    best: Optional[AutotunePlan]
    #: Feasible plans ranked by predicted latency (best first).
    ranked: list[AutotunePlan] = field(default_factory=list)
    #: Plans whose predicted peak exceeded the budget.
    pruned: list[AutotunePlan] = field(default_factory=list)
    #: Top-k plans that were validated by simulation (subset of ranked).
    validated: list[AutotunePlan] = field(default_factory=list)
    memory_budget: Optional[float] = None
    candidates_considered: int = 0

    def summary(self) -> str:
        lines = [
            f"autotune[{self.workload}]: {self.candidates_considered} candidates, "
            f"{len(self.pruned)} pruned by memory, {len(self.validated)} validated"
        ]
        if self.best is not None:
            best = self.best
            lines.append(
                f"  best: {best.label()}  "
                f"predicted {best.predicted_latency_s * 1e3:.1f} ms, "
                f"{best.predicted_peak_bytes / (1 << 30):.2f} GiB"
            )
            if best.simulated is not None:
                lines.append(
                    f"  simulated {best.simulated.iteration_latency * 1e3:.1f} ms, "
                    f"{best.simulated.peak_reserved_gib:.2f} GiB reserved"
                )
        return "\n".join(lines)


def plan_sharding(
    workload: TuneWorkload,
    *,
    memory_budget: Optional[float] = None,
    space: Optional[SearchSpace] = None,
    top_k: int = 3,
    validate: bool = True,
) -> SearchResult:
    """Search the configuration space for one workload.

    Args:
        workload: the model + cluster to tune.
        memory_budget: per-rank byte budget candidates must fit
            (default: the topology's GPU memory).
        space: overrides :func:`default_search_space`.
        top_k: how many leading plans to validate by simulation.
        validate: run :func:`simulate_training` on the leaders and
            re-rank them by *simulated* latency.  Analytic-only
            (``validate=False``) keeps the search pure prediction.

    Returns:
        A :class:`SearchResult`; ``result.best`` is the chosen plan.
    """
    if space is None:
        space = default_search_space(workload)
    if memory_budget is None:
        memory_budget = float(workload.topology.gpu.memory_bytes)

    ranked: list[AutotunePlan] = []
    pruned: list[AutotunePlan] = []
    considered = 0
    for candidate in space.candidates():
        considered += 1
        plan = evaluate_candidate(workload, candidate)
        if plan.predicted_peak_bytes > memory_budget:
            pruned.append(plan)
        else:
            ranked.append(plan)
    ranked.sort(key=lambda p: p.predicted_latency_s)
    pruned.sort(key=lambda p: p.predicted_peak_bytes)

    validated: list[AutotunePlan] = []
    if validate and ranked:
        for plan in ranked[: max(1, top_k)]:
            config = workload.sim_config(
                name=f"{workload.name} autotune", checkpointing=plan.candidate.checkpointing
            )
            config.plan = plan
            plan.simulated = simulate_training(config)
            validated.append(plan)
        # Re-rank the validated prefix by what the simulator measured;
        # OOM (allocator over capacity) disqualifies outright.
        validated.sort(
            key=lambda p: (p.simulated.oom, p.simulated.iteration_latency)
        )
        best = validated[0] if not validated[0].simulated.oom else None
        if best is None and len(ranked) > len(validated):
            # All leaders OOMed in simulation: fall back to the first
            # unvalidated plan (predictions disagreed with the
            # allocator — surface it rather than fail silently).
            best = ranked[len(validated)]
    else:
        best = ranked[0] if ranked else None

    return SearchResult(
        workload=workload.name,
        best=best,
        ranked=ranked,
        pruned=pruned,
        validated=validated,
        memory_budget=memory_budget,
        candidates_considered=considered,
    )
