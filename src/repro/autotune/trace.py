"""Symbolic forward traces for the autotune cost models.

A :class:`ModelTrace` is a flat list of :class:`OpRecord` entries, one
per kernel-producing operation of a model's forward pass, annotated
with the dotted path of the module that owns the op.  Both halves of
the autotuner consume it:

- the memory estimator sums output elements to predict the
  activation footprint (every op output here is either saved for
  backward by its consumer or freed immediately under checkpointing);
- the throughput predictor sums matmul FLOPs and elementwise traffic
  per would-be FSDP unit to price each unit's compute.

Traces are *symbolic*: nothing is allocated and no model is built.
The builders mirror the corresponding ``forward`` implementations in
:mod:`repro.models` op by op — if those change shape, the trace
builders must follow (``benchmarks/test_autotune.py`` guards the
calibration error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "OpRecord",
    "UnitTotals",
    "ModelTrace",
    "trace_mingpt",
    "trace_t5",
    "trace_dhen",
]


@dataclass(frozen=True)
class OpRecord:
    """One forward op: its owner, output size and arithmetic cost.

    Attributes:
        path: dotted module path of the op's owning module ('' = root).
        elems: elements of the op's output tensor (activation size).
        matmul_flops: tensor-core FLOPs (0 for elementwise/reduction).
        kernels: kernel launches the op issues.
        saved: whether the output survives until backward.  False for
            outputs no backward node retains — e.g. the attention score
            chain (raw scores, scaled, masked): softmax's backward
            needs only its own *output*, so everything upstream of it
            is freed as soon as forward moves on.
    """

    path: str
    elems: float
    matmul_flops: float = 0.0
    kernels: int = 1
    saved: bool = True


@dataclass
class UnitTotals:
    """Per-FSDP-unit aggregation of trace records.

    ``elems`` is split by liveness: ``saved_elems`` survive until the
    unit's backward, ``transient_elems`` (the ``saved=False`` records —
    e.g. pre-softmax attention scores) are freed as soon as the unit's
    forward moves on.  The compiler's reorder pass needs the split to
    prove a pipelined unshard memory-safe: only the saved part
    accumulates across units, while the transient part spikes inside
    one unit's forward.  Folding both into ``elems`` (the old
    behaviour) over-constrained reorderings by pretending transient
    spikes persist.
    """

    elems: float = 0.0
    matmul_flops: float = 0.0
    kernels: int = 0
    saved_elems: float = 0.0
    transient_elems: float = 0.0


@dataclass
class ModelTrace:
    """A model's symbolic forward pass.

    Attributes:
        records: all forward ops in execution order.
        blocks: ``(path_prefix, boundary_elems)`` per checkpointable
            block — under activation checkpointing only the boundary
            output of each block stays saved; interior records are
            freed after forward and re-allocated during the backward
            recompute.
    """

    records: list[OpRecord] = field(default_factory=list)
    blocks: list[tuple[str, float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(
        self,
        path: str,
        elems: float,
        matmul_flops: float = 0.0,
        kernels: int = 1,
        saved: bool = True,
    ) -> None:
        self.records.append(OpRecord(path, elems, matmul_flops, kernels, saved))

    def _block_of(self, path: str) -> Optional[str]:
        for prefix, _ in self.blocks:
            if path == prefix or path.startswith(prefix + "."):
                return prefix
        return None

    # ------------------------------------------------------------------
    # Activation accounting
    # ------------------------------------------------------------------
    def saved_elems(self, checkpointing: bool) -> float:
        """Elements alive at the end of forward (saved for backward)."""
        if not checkpointing or not self.blocks:
            return sum(r.elems for r in self.records if r.saved)
        total = 0.0
        for record in self.records:
            if record.saved and self._block_of(record.path) is None:
                total += record.elems
        total += sum(boundary for _, boundary in self.blocks)
        return total

    def block_interior_elems(self) -> float:
        """Interior elements of the largest checkpointable block.

        Under checkpointing this is re-materialized during backward,
        one block at a time; the largest block gates the peak.
        """
        per_block: dict[str, float] = {}
        for record in self.records:
            block = self._block_of(record.path)
            if block is not None:
                per_block[block] = per_block.get(block, 0.0) + record.elems
        return max(per_block.values()) if per_block else 0.0

    def tail_elems(self) -> float:
        """Largest single op output (gradient-transient proxy).

        At the start of backward the gradients of the widest
        activations (typically the logits and log-probabilities of a
        language-model head) coexist with the saved activations.
        """
        return max((r.elems for r in self.records), default=0.0)

    # ------------------------------------------------------------------
    # Per-unit attribution
    # ------------------------------------------------------------------
    def per_unit(self, unit_paths: Sequence[str]) -> dict[str, UnitTotals]:
        """Aggregate records by owning FSDP unit.

        A record belongs to the unit with the *longest* path that is a
        dotted prefix of the record's path; the root unit ('') catches
        everything else — mirroring how ``_auto_wrap`` assigns
        parameters.
        """
        ordered = sorted(unit_paths, key=len, reverse=True)
        totals = {path: UnitTotals() for path in unit_paths}
        if "" not in totals:
            totals[""] = UnitTotals()
        for record in self.records:
            owner = ""
            for path in ordered:
                if path and (record.path == path or record.path.startswith(path + ".")):
                    owner = path
                    break
            bucket = totals[owner]
            bucket.elems += record.elems
            bucket.matmul_flops += record.matmul_flops
            bucket.kernels += record.kernels
            if record.saved:
                bucket.saved_elems += record.elems
            else:
                bucket.transient_elems += record.elems
        return totals

    def unit_liveness(
        self, unit_paths: Sequence[str], *, elem_size: int = 4
    ) -> dict[str, tuple[int, int]]:
        """Per-unit ``(saved_bytes, transient_bytes)`` activation map.

        The shape :class:`repro.compile.CaptureHook` consumes (keyed by
        unit label = module path, '' = root) to annotate captured
        forward-compute nodes for the memory-budget proof.
        """
        return {
            path: (
                int(totals.saved_elems * elem_size),
                int(totals.transient_elems * elem_size),
            )
            for path, totals in self.per_unit(unit_paths).items()
        }

    def total_matmul_flops(self) -> float:
        return sum(r.matmul_flops for r in self.records)

    def total_kernels(self) -> int:
        return sum(r.kernels for r in self.records)


# ----------------------------------------------------------------------
# Shared transformer pieces
# ----------------------------------------------------------------------
def _trace_attention(
    trace: ModelTrace,
    path: str,
    *,
    batch: float,
    q_len: float,
    kv_len: float,
    d_model: float,
    inner: float,
    num_heads: float,
    causal: bool,
) -> None:
    """Mirror :class:`repro.models.transformer.MultiHeadAttention`.

    ``transpose``/``permute`` copy in this tensor implementation (no
    stride support), so every head reshape is a real kernel with a
    real output allocation.
    """
    nq = batch * q_len
    nkv = batch * kv_len
    maps = batch * num_heads * q_len * kv_len
    head_dim = inner / num_heads
    # q/k/v projections + head permutes
    trace.add(path, nq * inner, 2.0 * nq * d_model * inner)
    trace.add(path, nq * inner)  # q permute copy
    trace.add(path, nkv * inner, 2.0 * nkv * d_model * inner)
    trace.add(path, nkv * inner)  # k permute copy
    trace.add(path, nkv * inner, 2.0 * nkv * d_model * inner)
    trace.add(path, nkv * inner)  # v permute copy
    trace.add(path, nkv * inner)  # transpose(k, -2, -1) copy
    # scores = q @ k^T, scale, (mask), softmax.  The pre-softmax chain
    # is freed after forward: softmax backward keeps only its output.
    trace.add(path, maps, 2.0 * maps * head_dim, saved=False)
    trace.add(path, maps, saved=False)  # scale mul
    if causal:
        trace.add(path, maps, saved=False)  # masked_fill
    trace.add(path, maps)  # softmax
    # attended = weights @ v, merge permute, out projection
    trace.add(path, nq * inner, 2.0 * maps * head_dim)
    trace.add(path, nq * inner)  # merge permute copy
    trace.add(path, nq * d_model, 2.0 * nq * inner * d_model)


def _trace_block(
    trace: ModelTrace,
    path: str,
    *,
    batch: float,
    q_len: float,
    d_model: float,
    inner: float,
    d_ff: float,
    num_heads: float,
    causal: bool,
    cross_len: float = 0.0,
) -> None:
    """Mirror :class:`repro.models.transformer.TransformerBlock`."""
    n = batch * q_len
    trace.add(path, n * d_model, kernels=2)  # ln1
    _trace_attention(
        trace,
        path,
        batch=batch,
        q_len=q_len,
        kv_len=q_len,
        d_model=d_model,
        inner=inner,
        num_heads=num_heads,
        causal=causal,
    )
    trace.add(path, n * d_model)  # residual add
    if cross_len:
        trace.add(path, n * d_model, kernels=2)  # ln_cross
        _trace_attention(
            trace,
            path,
            batch=batch,
            q_len=q_len,
            kv_len=cross_len,
            d_model=d_model,
            inner=inner,
            num_heads=num_heads,
            causal=False,
        )
        trace.add(path, n * d_model)  # residual add
    trace.add(path, n * d_model, kernels=2)  # ln2
    trace.add(path, n * d_ff, 2.0 * n * d_model * d_ff)  # up
    trace.add(path, n * d_ff)  # gelu
    trace.add(path, n * d_model, 2.0 * n * d_ff * d_model)  # down
    trace.add(path, n * d_model)  # residual add


# ----------------------------------------------------------------------
# Model trace builders
# ----------------------------------------------------------------------
def trace_mingpt(config, batch: int, seq: int) -> ModelTrace:
    """Trace :class:`repro.models.MinGPT` (see ``mingpt.py`` forward)."""
    trace = ModelTrace()
    n = float(batch * seq)
    c = float(config.n_embd)
    v = float(config.vocab_size)
    trace.add("tok_emb", n * c)
    trace.add("", n * c)  # position add
    for i in range(config.n_layer):
        _trace_block(
            trace,
            f"blocks.{i}",
            batch=batch,
            q_len=seq,
            d_model=c,
            inner=c,
            d_ff=4.0 * c,
            num_heads=config.n_head,
            causal=True,
        )
        trace.blocks.append((f"blocks.{i}", n * c))
    trace.add("ln_f", n * c, kernels=2)
    trace.add("head", n * v, 2.0 * n * c * v)
    trace.add("", n * v, kernels=2)  # log_softmax (+ nll)
    return trace


def trace_t5(config, batch: int, src_len: int, tgt_len: Optional[int] = None) -> ModelTrace:
    """Trace :class:`repro.models.T5Model` (encoder + causal decoder)."""
    if tgt_len is None:
        tgt_len = src_len
    trace = ModelTrace()
    c = float(config.d_model)
    inner = float(config.num_heads * config.head_dim)
    n_src = float(batch * src_len)
    n_tgt = float(batch * tgt_len)
    v = float(config.vocab_size)
    trace.add("embedding", n_src * c)
    for i in range(config.num_layers):
        _trace_block(
            trace,
            f"encoder.{i}",
            batch=batch,
            q_len=src_len,
            d_model=c,
            inner=inner,
            d_ff=config.d_ff,
            num_heads=config.num_heads,
            causal=False,
        )
        trace.blocks.append((f"encoder.{i}", n_src * c))
    trace.add("embedding", n_tgt * c)
    for i in range(config.num_layers):
        _trace_block(
            trace,
            f"decoder.{i}",
            batch=batch,
            q_len=tgt_len,
            d_model=c,
            inner=inner,
            d_ff=config.d_ff,
            num_heads=config.num_heads,
            causal=True,
            cross_len=float(src_len),
        )
        trace.blocks.append((f"decoder.{i}", n_tgt * c))
    trace.add("final_norm", n_tgt * c, kernels=2)
    trace.add("lm_head", n_tgt * v, 2.0 * n_tgt * c * v)
    trace.add("", n_tgt * v, kernels=2)  # log_softmax (+ nll)
    return trace


def trace_dhen(config, batch: int) -> ModelTrace:
    """Trace the dense stack of :class:`repro.models.DHEN`.

    The sparse-table lookup and all-to-all are outside the dense FSDP
    stack; the workload accounts for them separately (serial comm time
    plus resident table memory).
    """
    trace = ModelTrace()
    b = float(batch)
    feats = float(config.num_features)
    d = float(config.d_model)
    n = b * feats
    trace.add("sparse_table", n * config.sparse_dim)
    trace.add("feature_proj", n * d, 2.0 * n * config.sparse_dim * d)
    trace.add("dense_proj", b * d, 2.0 * b * config.num_dense_features * d)
    trace.add("", n * d)  # features + dense broadcast add
    for i in range(config.num_layers):
        path = f"layers.{i}"
        trace.add(path, n * d, kernels=2)  # norm
        _trace_attention(
            trace,
            path,
            batch=b,
            q_len=feats,
            kv_len=feats,
            d_model=d,
            inner=d,
            num_heads=config.num_heads,
            causal=False,
        )
        trace.add(path, n * config.d_ff, 2.0 * n * d * config.d_ff)  # mlp up
        trace.add(path, n * config.d_ff)  # relu
        trace.add(path, n * d, 2.0 * n * config.d_ff * d)  # mlp down
        trace.add(path, 2.0 * n * d)  # cat(attended, mixed)
        trace.add(path, n * d, 2.0 * n * 2.0 * d * d)  # combine
        trace.add(path, n * d)  # residual add
        trace.blocks.append((path, n * d))
    trace.add("head", b, 2.0 * b * d * feats)
    trace.add("", 6.0 * b, kernels=8)  # sigmoid + BCE chain
    return trace
