"""Candidate configurations and the plan the autotuner produces."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional

from repro.fsdp.mixed_precision import MixedPrecision
from repro.fsdp.runtime import BackwardPrefetch
from repro.fsdp.sharding import ShardingStrategy
from repro.fsdp.wrap import Policy, policy_label

__all__ = ["WrapChoice", "Candidate", "SearchSpace", "AutotunePlan"]


@dataclass(frozen=True)
class WrapChoice:
    """One wrap-granularity option: a policy plus its display label."""

    label: str
    policy: Optional[Policy] = None  # None = whole-model (single unit)

    @staticmethod
    def of(policy: Optional[Policy]) -> "WrapChoice":
        return WrapChoice(policy_label(policy), policy)


@dataclass
class Candidate:
    """One point of the autotune search space."""

    wrap: WrapChoice
    strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD
    sharding_factor: Optional[int] = None
    backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE
    forward_prefetch: bool = False
    limit_all_gathers: bool = True
    rate_limit_inflight: int = 2
    mixed_precision: Optional[MixedPrecision] = None
    checkpointing: bool = False

    def label(self) -> str:
        parts = [self.strategy.value]
        if self.sharding_factor:
            parts.append(f"F={self.sharding_factor}")
        parts.append(f"wrap={self.wrap.label}")
        parts.append(
            f"limit={self.rate_limit_inflight if self.limit_all_gathers else 'off'}"
        )
        prefetch = self.backward_prefetch.value
        if self.forward_prefetch:
            prefetch += "+fwd"
        parts.append(f"prefetch={prefetch}")
        if self.mixed_precision is not None and self.mixed_precision.param_dtype is not None:
            parts.append(self.mixed_precision.param_dtype.name)
        if self.checkpointing:
            parts.append("ckpt")
        return " ".join(parts)

    @property
    def compute_itemsize(self) -> int:
        mp = self.mixed_precision
        if mp is not None and mp.param_dtype is not None:
            return mp.param_dtype.itemsize
        return 4

    @property
    def reduce_itemsize(self) -> int:
        mp = self.mixed_precision
        if mp is None:
            return 4
        reduce_dtype = mp.resolved_reduce_dtype()
        if reduce_dtype is not None:
            return reduce_dtype.itemsize
        return self.compute_itemsize


@dataclass
class SearchSpace:
    """Cartesian search space the planner enumerates.

    ``(strategy, sharding_factor)`` pairs are listed together because
    the factor only varies for hybrid strategies (non-hybrid FSDP
    always shards over the full group — see ``make_process_groups``).
    """

    wrap_choices: list[WrapChoice]
    strategies: list[tuple[ShardingStrategy, Optional[int]]]
    backward_prefetch: list[BackwardPrefetch] = field(
        default_factory=lambda: [BackwardPrefetch.BACKWARD_PRE, BackwardPrefetch.NONE]
    )
    forward_prefetch: list[bool] = field(default_factory=lambda: [False, True])
    rate_limits: list[Optional[int]] = field(
        default_factory=lambda: [2, 4, None]
    )  # None = limiter off
    mixed_precision: list[Optional[MixedPrecision]] = field(default_factory=lambda: [None])
    checkpointing: list[bool] = field(default_factory=lambda: [False, True])

    def candidates(self) -> Iterator[Candidate]:
        for wrap in self.wrap_choices:
            for strategy, factor in self.strategies:
                for ckpt in self.checkpointing:
                    for mp in self.mixed_precision:
                        for limit in self.rate_limits:
                            for bp in self.backward_prefetch:
                                for fp in self.forward_prefetch:
                                    yield Candidate(
                                        wrap=wrap,
                                        strategy=strategy,
                                        sharding_factor=factor,
                                        backward_prefetch=bp,
                                        forward_prefetch=fp,
                                        limit_all_gathers=limit is not None,
                                        rate_limit_inflight=limit or 2,
                                        mixed_precision=mp,
                                        checkpointing=ckpt,
                                    )

    def __len__(self) -> int:
        return sum(1 for _ in self.candidates())


@dataclass
class AutotunePlan:
    """The autotuner's chosen (or considered) configuration.

    Carries the candidate knobs plus the analytic predictions that
    ranked it and, when validation ran, the simulated result.  A plan
    plugs into both entry points:

    - ``SimConfig(plan=plan)`` — :func:`repro.perf.simulate_training`
      calls :meth:`apply` before building anything;
    - ``FSDP(model, **plan.fsdp_kwargs())`` — direct wrapper use.
    """

    candidate: Candidate
    memory: Optional[object] = None  # MemoryEstimate
    latency: Optional[object] = None  # LatencyEstimate
    #: Checkpointing-specific model builder (workload-provided) applied
    #: to SimConfig so the candidate's ``checkpointing`` flag is real.
    build_model: Optional[Callable] = None
    simulated: Optional[object] = None  # PerfResult

    @property
    def predicted_latency_s(self) -> float:
        return self.latency.total_s if self.latency is not None else float("inf")

    @property
    def predicted_peak_bytes(self) -> float:
        return self.memory.total_bytes if self.memory is not None else float("inf")

    def label(self) -> str:
        return self.candidate.label()

    def fsdp_kwargs(self) -> dict:
        """Keyword arguments for ``FullyShardedDataParallel``."""
        c = self.candidate
        return dict(
            sharding_strategy=c.strategy,
            sharding_factor=c.sharding_factor,
            auto_wrap_policy=c.wrap.policy,
            mixed_precision=c.mixed_precision,
            backward_prefetch=c.backward_prefetch,
            forward_prefetch=c.forward_prefetch,
            limit_all_gathers=c.limit_all_gathers,
            rate_limit_inflight=c.rate_limit_inflight,
        )

    def apply(self, config):
        """Overlay the plan's knobs onto a ``SimConfig``."""
        c = self.candidate
        return replace(
            config,
            plan=None,
            sharding_strategy=c.strategy,
            sharding_factor=c.sharding_factor,
            auto_wrap_policy=c.wrap.policy,
            wrap_policy_label=c.wrap.label,
            mixed_precision=c.mixed_precision,
            backward_prefetch=c.backward_prefetch,
            forward_prefetch=c.forward_prefetch,
            limit_all_gathers=c.limit_all_gathers,
            rate_limit_inflight=c.rate_limit_inflight,
            build_model=self.build_model or config.build_model,
        )
