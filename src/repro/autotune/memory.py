"""Static peak-memory estimator for FSDP configurations (no simulation).

Predicts the simulated allocator's *reserved* peak for one candidate
configuration from the module tree (via :func:`describe_wrap_plan`
unit sizes) and a symbolic activation trace — without building the
model or running an iteration.

The model mirrors the caching allocator's per-stream pools: reserved
memory is (approximately) the sum of each pool's own historical peak,
because segments are cached per stream and never returned.

Compute (default-stream) pool:
  - parameter shards (full precision) and Adam state, persistent;
  - activations saved for backward (+ gradient transients);
  - the unsharded FlatParameter *gradient* the autograd engine
    assembles (the widest unit gates this transient);
  - the construction transient of flatten-concat-chunk — originals,
    the concatenated flat tensor and the padded copy coexist briefly
    per unit, on top of already-built shards (reserved never shrinks,
    so this floor survives into steady state).

Communication (unshard-stream) pool:
  - inflight unsharded FlatParameter storages: bounded by the rate
    limiter for reshard-after-forward strategies, *all* units for
    SHARD_GRAD_OP-style strategies (Figure 8's reserved-memory gap);
  - the low-precision shard staging buffer under mixed precision;
  - reduced gradient shards (ReduceScatter outputs accumulate here
    until ``optimizer.zero_grad``) and the ReduceScatter cast
    transients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fsdp.sharding import ShardingStrategy
from repro.fsdp.wrap import WrapUnitPlan

from repro.autotune.trace import ModelTrace

__all__ = ["MemoryEstimate", "estimate_peak_memory"]

#: Gradient transients coexisting with saved activations at the start
#: of backward (grad of logits + grad of log-probs, both tail-sized).
TAIL_GRAD_FACTOR = 2.0
#: Recompute + gradient transients per re-materialized block under
#: activation checkpointing.
CKPT_BLOCK_FACTOR = 2.0
#: Adam temporaries live during the step (a few shard-sized tensors).
OPTIMIZER_TRANSIENT_SLOTS = 3.0
#: Allowance for segment rounding (small/medium allocations reserve
#: 2 MiB / 20 MiB segments) per pool.
SEGMENT_SLOP = 8 << 20

_FULL_ITEMSIZE = 4  # parameters/optimizer state are float32


@dataclass
class MemoryEstimate:
    """Predicted peak memory, decomposed the way the pools see it."""

    param_shard_bytes: float
    optimizer_bytes: float
    activation_bytes: float
    unsharded_grad_bytes: float
    construction_bytes: float
    unsharded_param_bytes: float
    mp_shard_bytes: float
    grad_shard_bytes: float
    reduce_transient_bytes: float
    compute_pool_bytes: float
    comm_pool_bytes: float
    total_bytes: float

    def breakdown(self) -> dict[str, float]:
        return {
            "param_shards": self.param_shard_bytes,
            "optimizer_state": self.optimizer_bytes,
            "activations": self.activation_bytes,
            "unsharded_grad": self.unsharded_grad_bytes,
            "construction": self.construction_bytes,
            "unsharded_params": self.unsharded_param_bytes,
            "mp_shard": self.mp_shard_bytes,
            "grad_shards": self.grad_shard_bytes,
            "reduce_transient": self.reduce_transient_bytes,
            "compute_pool": self.compute_pool_bytes,
            "comm_pool": self.comm_pool_bytes,
            "total": self.total_bytes,
        }


def resolve_sharding_factor(
    strategy: ShardingStrategy, sharding_factor: Optional[int], world_size: int, *, gpus_per_host: int = 8
) -> int:
    """The shard-group size a candidate resolves to at runtime.

    Mirrors :func:`repro.fsdp.sharding.make_process_groups`: non-hybrid
    FULL_SHARD / SHARD_GRAD_OP always shard over the full world;
    NO_SHARD over one rank; hybrid strategies over ``sharding_factor``
    (default: one host).
    """
    if strategy is ShardingStrategy.NO_SHARD:
        return 1
    if strategy.is_hybrid:
        factor = sharding_factor if sharding_factor is not None else gpus_per_host
        return max(1, min(factor, world_size))
    return max(1, world_size)


def _padded(numel: int, factor: int) -> int:
    return (numel + factor - 1) // factor * factor


def estimate_peak_memory(
    units: Sequence[WrapUnitPlan],
    trace: ModelTrace,
    *,
    world_size: int,
    strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD,
    sharding_factor: Optional[int] = None,
    limit_all_gathers: bool = True,
    rate_limit_inflight: int = 2,
    checkpointing: bool = False,
    compute_itemsize: int = _FULL_ITEMSIZE,
    reduce_itemsize: Optional[int] = None,
    optimizer_state_slots: float = 2.0,
    gpus_per_host: int = 8,
    extra_persistent_bytes: float = 0.0,
) -> MemoryEstimate:
    """Predict the allocator's peak reserved bytes for one candidate.

    Args:
        units: would-be FSDP units (root residual first) from
            :func:`describe_wrap_plan`.
        trace: symbolic forward trace of the model.
        world_size: global world size ``W``.
        strategy / sharding_factor: candidate sharding configuration.
        limit_all_gathers / rate_limit_inflight: rate limiter knobs.
        checkpointing: activation checkpointing enabled.
        compute_itemsize: bytes per element of the compute dtype
            (2 under BF16 mixed precision, 4 otherwise).
        reduce_itemsize: bytes per element of the gradient-reduction
            dtype (defaults to ``compute_itemsize``).
        optimizer_state_slots: shard-sized optimizer tensors per
            parameter (2 for Adam, 0 for SGD).
        extra_persistent_bytes: workload-specific resident memory the
            wrap plan does not cover (e.g. DHEN's ignored sparse table
            and its dense gradient).
    """
    factor = resolve_sharding_factor(
        strategy, sharding_factor, world_size, gpus_per_host=gpus_per_host
    )
    c = compute_itemsize
    r = reduce_itemsize if reduce_itemsize is not None else c
    mixed = c != _FULL_ITEMSIZE

    padded = [_padded(u.numel, factor) for u in units]
    shard = [p // factor for p in padded]
    unsharded_b = [p * c for p in padded]
    shard_b = [s * _FULL_ITEMSIZE for s in shard]

    param_shards = float(sum(shard_b))
    optimizer = optimizer_state_slots * param_shards

    # ----- activations (compute pool) ---------------------------------
    saved = trace.saved_elems(checkpointing) * c
    tail = trace.tail_elems() * c * TAIL_GRAD_FACTOR
    block_live = trace.block_interior_elems() * c * CKPT_BLOCK_FACTOR if checkpointing else 0.0
    activations = saved + tail + block_live

    # ----- unsharded FlatParameter gradient (compute pool) ------------
    # The engine accumulates the unsharded gradient on the default
    # stream; it is freed once ReduceScatter's cast/copy consumed it.
    unsharded_grad = float(max(unsharded_b, default=0.0))

    # ----- construction transient (compute pool) ----------------------
    # Units flatten in post-order (nested units first, root residual
    # last): originals + concatenated flat (+ a padded copy only when
    # the numel is not divisible by F — pad_right is a no-op otherwise)
    # + new shard, on top of every already-built shard.
    construction = 0.0
    built = 0.0
    order = list(range(1, len(units))) + [0]
    for i in order:
        numel_b = units[i].numel * _FULL_ITEMSIZE
        pad_b = padded[i] * _FULL_ITEMSIZE if padded[i] != units[i].numel else 0.0
        transient = built + 2.0 * numel_b + pad_b + shard_b[i]
        construction = max(construction, transient)
        built += shard_b[i]

    # ----- unsharded parameter storages (comm pool) -------------------
    reshard_after_forward = strategy.reshard_after_forward
    needs_unshard = factor > 1 or mixed
    if not needs_unshard:
        unsharded_params = 0.0
    elif not reshard_after_forward:
        # SHARD_GRAD_OP / NO_SHARD / HYBRID_ZERO2: every unit stays
        # unsharded from its forward until the end of backward.
        unsharded_params = float(sum(unsharded_b))
    else:
        # FULL_SHARD / HYBRID_SHARD.  The root never reshards
        # mid-iteration; non-root inflight storages are bounded by the
        # rate limiter (limit + 1 admitted before the CPU blocks), or
        # unbounded CPU run-ahead gathers everything without it.
        root = unsharded_b[0] if unsharded_b else 0.0
        rest = sorted(unsharded_b[1:], reverse=True)
        if limit_all_gathers:
            cap = max(1, rate_limit_inflight) + 1
            unsharded_params = root + float(sum(rest[:cap]))
        else:
            unsharded_params = root + float(sum(rest))

    # ----- mixed-precision shard staging (comm pool) ------------------
    mp_shard = float(max((s * c for s in shard), default=0.0)) if mixed else 0.0

    # ----- gradient shards + ReduceScatter transients (comm pool) -----
    if strategy is ShardingStrategy.NO_SHARD and not mixed:
        # reduce_grad all-reduces the engine's gradient in place: the
        # full gradients live on the compute pool instead.
        grad_shards = 0.0
        reduce_transient = 0.0
        unsharded_grad = float(sum(unsharded_b))
    else:
        grad_shards = float(sum(s * _FULL_ITEMSIZE for s in shard))
        cast_in = max(padded, default=0) * r if c != r else 0.0
        reduce_transient = cast_in + max(shard, default=0) * (r + _FULL_ITEMSIZE)

    optimizer_transient = OPTIMIZER_TRANSIENT_SLOTS * float(max(shard_b, default=0.0))

    compute_steady = (
        param_shards + optimizer + activations + unsharded_grad + extra_persistent_bytes
    )
    compute_optimizer = param_shards + optimizer + optimizer_transient + extra_persistent_bytes
    compute_pool = max(construction + extra_persistent_bytes, compute_steady, compute_optimizer)
    comm_pool = unsharded_params + mp_shard + grad_shards + reduce_transient

    total = compute_pool + comm_pool + 2 * SEGMENT_SLOP
    return MemoryEstimate(
        param_shard_bytes=param_shards,
        optimizer_bytes=optimizer,
        activation_bytes=activations,
        unsharded_grad_bytes=unsharded_grad,
        construction_bytes=construction,
        unsharded_param_bytes=unsharded_params,
        mp_shard_bytes=mp_shard,
        grad_shard_bytes=grad_shards,
        reduce_transient_bytes=reduce_transient,
        compute_pool_bytes=compute_pool,
        comm_pool_bytes=comm_pool,
        total_bytes=total,
    )
