"""Analytic iteration-latency predictor for FSDP configurations.

Composes the roofline kernel model (:mod:`repro.hw.kernel_model`) and
the collective cost model (:mod:`repro.hw.comm_model`) per FlatParameter
under the candidate's overlap regime, replaying the runtime's stream
semantics as a three-resource list schedule:

- the **CPU** issues kernels in program order and blocks only on the
  rate limiter (Section 3.4);
- the **communication stream** executes AllGathers / ReduceScatters /
  AllReduces strictly in issue order — which is exactly where backward
  prefetching matters: ``BACKWARD_PRE`` enqueues the next AllGather
  *before* the current ReduceScatter, ``NONE`` lands it after
  (Section 3.3.2);
- the **compute stream** runs forward/backward kernels, each unit's
  compute gated on its own AllGather completion event.

The recurrence advances all three clocks over the forward, backward
and optimizer phases and reports where the time went.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.fsdp.runtime import BackwardPrefetch
from repro.fsdp.sharding import ShardingStrategy
from repro.fsdp.wrap import WrapUnitPlan
from repro.hw.comm_model import CollectiveKind, CommModel
from repro.hw.specs import ClusterTopology

from repro.autotune.memory import resolve_sharding_factor, _padded
from repro.autotune.trace import ModelTrace

__all__ = ["UnitWork", "LatencyEstimate", "build_unit_work", "predict_iteration_latency"]

#: HBM reads+writes per activation element produced in forward
#: (write once, read by the consumer).
FWD_TRAFFIC_FACTOR = 2.0
#: Backward roughly doubles both FLOPs and traffic per forward op.
BWD_COMPUTE_FACTOR = 2.0
#: Elementwise kernels per Adam step (mul_/add_/div/sqrt chain).
ADAM_KERNELS = 10
#: Shard-sized HBM transfers per Adam step (params, grads, two states,
#: temporaries — read and written).
ADAM_TRAFFIC_SLOTS = 25.0


@dataclass
class UnitWork:
    """Per-FSDP-unit costs feeding the schedule recurrence."""

    label: str
    ag_s: float = 0.0  # AllGather (forward; backward too when resharded)
    rs_s: float = 0.0  # ReduceScatter over the shard group
    ar_s: float = 0.0  # AllReduce (hybrid replicate group / NO_SHARD)
    fwd_s: float = 0.0
    bwd_s: float = 0.0
    opt_s: float = 0.0
    cpu_fwd_s: float = 0.0
    cpu_bwd_s: float = 0.0
    reshard_after_forward: bool = True
    comm_launch_s: float = 0.0


@dataclass
class LatencyEstimate:
    """Predicted timeline of one training iteration."""

    total_s: float
    forward_s: float
    backward_s: float
    optimizer_s: float
    compute_s: float  # pure GPU compute (fwd + bwd + optimizer)
    comm_s: float  # sum of all collective durations
    exposed_comm_s: float  # comm not hidden behind compute
    per_unit: list[UnitWork] = field(default_factory=list)


# ----------------------------------------------------------------------
# Cost construction
# ----------------------------------------------------------------------
def build_unit_work(
    units: Sequence[WrapUnitPlan],
    trace: ModelTrace,
    *,
    topology: ClusterTopology,
    world_size: int,
    strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD,
    sharding_factor: Optional[int] = None,
    checkpointing: bool = False,
    compute_itemsize: int = 4,
    reduce_itemsize: Optional[int] = None,
    compute_dtype=None,
    optimizer: str = "adam",
    comm_model: Optional[CommModel] = None,
) -> list[UnitWork]:
    """Price every would-be unit's collectives and compute.

    Units come from :func:`describe_wrap_plan` (root residual first);
    the trace supplies per-unit FLOPs, activation traffic and kernel
    counts via path attribution.
    """
    from repro import dtypes

    if compute_dtype is None:
        compute_dtype = {2: dtypes.bfloat16, 4: dtypes.float32}.get(
            compute_itemsize, dtypes.float32
        )
    c = compute_itemsize
    r = reduce_itemsize if reduce_itemsize is not None else c
    factor = resolve_sharding_factor(
        strategy, sharding_factor, world_size, gpus_per_host=topology.host.gpus_per_host
    )
    comm = comm_model or CommModel(topology)
    gpu = topology.gpu
    shard_ranks = topology.shard_group_ranks(factor)
    replicate_ranks = topology.replicate_group_ranks(factor)
    num_replicas = len(replicate_ranks)
    mixed = c != 4
    matmul_rate = gpu.matmul_flops_per_s(compute_dtype)

    per_unit = trace.per_unit([u.path for u in units])
    work: list[UnitWork] = []
    for unit in units:
        padded = _padded(unit.numel, factor)
        shard = padded // factor
        totals = per_unit.get(unit.path)
        elems = totals.elems if totals else 0.0
        flops = totals.matmul_flops if totals else 0.0
        kernels = totals.kernels if totals else 0

        # --- collectives ---------------------------------------------
        ag_s = rs_s = ar_s = 0.0
        if factor > 1:
            ag_s = comm.time(CollectiveKind.ALL_GATHER_BASE, padded * c, shard_ranks)
            rs_s = comm.time(CollectiveKind.REDUCE_SCATTER, padded * r, shard_ranks)
        elif mixed:
            # NO_SHARD mixed precision: unshard is a cast-copy.
            ag_s = max(padded * (4 + c) / gpu.mem_bandwidth, gpu.kernel_min_duration)
        if strategy.is_hybrid and num_replicas > 1:
            ar_s = comm.time(
                CollectiveKind.ALL_REDUCE,
                shard * r,
                replicate_ranks,
                concurrent_groups=factor,
            )
        elif strategy is ShardingStrategy.NO_SHARD and world_size > 1:
            ar_s = comm.time(
                CollectiveKind.ALL_REDUCE, padded * r, list(range(world_size))
            )

        # --- compute --------------------------------------------------
        fwd = flops / matmul_rate if flops else 0.0
        fwd += elems * c * FWD_TRAFFIC_FACTOR / gpu.mem_bandwidth
        fwd = max(fwd, kernels * gpu.kernel_min_duration)
        bwd = fwd * BWD_COMPUTE_FACTOR
        bwd_kernels = kernels * 2
        if checkpointing and unit.path:  # block units recompute forward
            bwd += fwd
            bwd_kernels += kernels

        opt_s = 0.0
        opt_kernels = 0
        if shard:
            opt_kernels = ADAM_KERNELS if optimizer == "adam" else 3
            traffic = (ADAM_TRAFFIC_SLOTS if optimizer == "adam" else 6.0) * shard * 4
            opt_s = max(traffic / gpu.mem_bandwidth, opt_kernels * gpu.kernel_min_duration)

        work.append(
            UnitWork(
                label=unit.path or "root",
                ag_s=ag_s,
                rs_s=rs_s,
                ar_s=ar_s,
                fwd_s=fwd,
                bwd_s=bwd,
                opt_s=opt_s,
                cpu_fwd_s=kernels * gpu.kernel_launch_cpu,
                cpu_bwd_s=bwd_kernels * gpu.kernel_launch_cpu,
                reshard_after_forward=strategy.reshard_after_forward,
                comm_launch_s=gpu.kernel_launch_cpu,
            )
        )
    return work


# ----------------------------------------------------------------------
# Schedule recurrence
# ----------------------------------------------------------------------
class _Schedule:
    """Three clocks + the rate limiter's inflight event queue."""

    def __init__(self, limit_all_gathers: bool, rate_limit_inflight: int):
        self.cpu = 0.0
        self.comm = 0.0
        self.compute = 0.0
        self.limit = limit_all_gathers
        self.inflight_cap = max(1, rate_limit_inflight)
        self.events: deque[float] = deque()
        self.ag_done: dict[int, float] = {}

    def issue_ag(self, index: int, unit: UnitWork) -> None:
        if index in self.ag_done or unit.ag_s <= 0.0:
            return
        if self.limit:
            while len(self.events) >= self.inflight_cap:
                self.cpu = max(self.cpu, self.events.popleft())
        self.cpu += unit.comm_launch_s
        start = max(self.comm, self.cpu)
        self.comm = start + unit.ag_s
        self.ag_done[index] = self.comm

    def note_reshard(self, when: float) -> None:
        if self.limit:
            self.events.append(when)

    def run_compute(self, duration: float, cpu_s: float, ready: float = 0.0) -> float:
        issue = self.cpu
        self.cpu += cpu_s
        self.compute = max(self.compute, ready, issue) + duration
        return self.compute

    def issue_reduce(self, unit: UnitWork, ready: float) -> None:
        if unit.rs_s <= 0.0 and unit.ar_s <= 0.0:
            return
        self.cpu += unit.comm_launch_s
        start = max(self.comm, self.cpu, ready)
        self.comm = start + unit.rs_s + unit.ar_s


def predict_iteration_latency(
    units: Sequence[UnitWork],
    *,
    backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE,
    forward_prefetch: bool = False,
    limit_all_gathers: bool = True,
    rate_limit_inflight: int = 2,
    extra_serial_s: float = 0.0,
) -> LatencyEstimate:
    """Run the schedule recurrence over priced units.

    ``units[0]`` is the root residual unit: its AllGather issues first,
    its compute (embedding tail, norm, head, loss) is modelled at the
    end of forward and the start of backward, and its ReduceScatter is
    the last collective of the iteration.
    """
    units = list(units)
    if not units:
        return LatencyEstimate(0, 0, 0, 0, 0, 0, 0)
    sched = _Schedule(limit_all_gathers, rate_limit_inflight)
    root, blocks = units[0], units[1:]

    # ----- forward ----------------------------------------------------
    if extra_serial_s:
        # Serial pre-forward communication (e.g. DHEN's sparse
        # all-to-all) blocks compute before the first block runs.
        sched.cpu += extra_serial_s
        sched.compute = max(sched.compute, sched.cpu)
    sched.issue_ag(0, root)
    for i, unit in enumerate(blocks, start=1):
        sched.issue_ag(i, unit)
        if forward_prefetch and i < len(blocks):
            sched.issue_ag(i + 1, blocks[i])
        done = sched.run_compute(unit.fwd_s, unit.cpu_fwd_s, sched.ag_done.get(i, 0.0))
        if unit.reshard_after_forward and unit.ag_s > 0.0:
            sched.note_reshard(done)
    # Root compute (head + loss) closes the forward.
    sched.run_compute(root.fwd_s, root.cpu_fwd_s, sched.ag_done.get(0, 0.0))
    forward_end = sched.compute

    # ----- backward ---------------------------------------------------
    # Backward AllGathers re-gather only what forward resharded.
    needs_bwd_ag = [u.reshard_after_forward and u.ag_s > 0.0 for u in units]
    sched.ag_done = {i: t for i, t in sched.ag_done.items() if not needs_bwd_ag[i]}
    # Root backward (loss + head gradients) runs first; the root never
    # resharded, so no AllGather gates it.
    sched.run_compute(root.bwd_s, root.cpu_bwd_s)
    order = list(range(len(blocks), 0, -1))
    for pos, i in enumerate(order):
        unit = blocks[i - 1]
        sched.issue_ag(i, unit)
        if backward_prefetch is BackwardPrefetch.BACKWARD_PRE and pos + 1 < len(order):
            nxt = order[pos + 1]
            sched.issue_ag(nxt, blocks[nxt - 1])
        done = sched.run_compute(unit.bwd_s, unit.cpu_bwd_s, sched.ag_done.get(i, 0.0))
        if unit.ag_s > 0.0:
            sched.note_reshard(done)
        sched.issue_reduce(unit, done)
        if backward_prefetch is BackwardPrefetch.BACKWARD_POST and pos + 1 < len(order):
            nxt = order[pos + 1]
            sched.issue_ag(nxt, blocks[nxt - 1])
    sched.issue_reduce(root, sched.compute)
    backward_end = max(sched.compute, sched.comm)

    # ----- optimizer --------------------------------------------------
    # The end-of-backward callback orders the compute stream behind the
    # communication stream before the optimizer reads gradients.
    opt_total = sum(u.opt_s for u in units)
    total = backward_end + opt_total

    compute = sum(u.fwd_s + u.bwd_s for u in units) + opt_total
    comm = sum(u.ag_s * (2.0 if needs_bwd_ag[i] and i > 0 else 1.0) for i, u in enumerate(units))
    comm += sum(u.rs_s + u.ar_s for u in units) + extra_serial_s
    return LatencyEstimate(
        total_s=total,
        forward_s=forward_end,
        backward_s=backward_end - forward_end,
        optimizer_s=opt_total,
        compute_s=compute,
        comm_s=comm,
        exposed_comm_s=max(0.0, total - compute),
        per_unit=list(units),
    )
