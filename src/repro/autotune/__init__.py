"""repro.autotune — sharding-configuration planner for the simulator.

Searches wrap granularity, sharding strategy (including hybrid
factors), prefetch and rate-limiter settings, mixed precision and
activation checkpointing against the analytic cost model, then
validates the leading candidates with :func:`repro.perf.simulate_training`.

Typical use::

    from repro.autotune import gpt_workload, plan_sharding
    from repro.models.mingpt import GPT_MEDIUM_SIM

    wl = gpt_workload(GPT_MEDIUM_SIM, batch_size=8, world_size=8)
    result = plan_sharding(wl, memory_budget=40 << 30)
    print(result.summary())
    config = result.best.apply(wl.sim_config())   # or FSDP(model, **result.best.fsdp_kwargs())
"""

from repro.autotune.memory import MemoryEstimate, estimate_peak_memory, resolve_sharding_factor
from repro.autotune.planner import (
    SearchResult,
    default_search_space,
    evaluate_candidate,
    plan_sharding,
)
from repro.autotune.predict import (
    LatencyEstimate,
    UnitWork,
    build_unit_work,
    predict_iteration_latency,
)
from repro.autotune.report import (
    CalibrationRow,
    calibrate,
    print_calibration_table,
    rows_to_json,
    search_result_to_json,
)
from repro.autotune.space import AutotunePlan, Candidate, SearchSpace, WrapChoice
from repro.autotune.trace import ModelTrace, OpRecord, trace_dhen, trace_mingpt, trace_t5
from repro.autotune.workloads import TuneWorkload, dhen_workload, gpt_workload, t5_workload

__all__ = [
    "AutotunePlan",
    "CalibrationRow",
    "Candidate",
    "LatencyEstimate",
    "MemoryEstimate",
    "ModelTrace",
    "OpRecord",
    "SearchResult",
    "SearchSpace",
    "TuneWorkload",
    "UnitWork",
    "WrapChoice",
    "build_unit_work",
    "calibrate",
    "default_search_space",
    "dhen_workload",
    "estimate_peak_memory",
    "evaluate_candidate",
    "gpt_workload",
    "plan_sharding",
    "predict_iteration_latency",
    "print_calibration_table",
    "resolve_sharding_factor",
    "rows_to_json",
    "search_result_to_json",
    "t5_workload",
    "trace_dhen",
    "trace_mingpt",
    "trace_t5",
]
