"""Calibration reporting: predicted vs. simulated, per configuration.

The cost models in :mod:`repro.autotune` are only useful if their
*ranking* matches the simulator, and their absolute numbers are only
trustworthy within a stated error band.  This module measures both:
:func:`calibrate` runs prediction and simulation side by side over a
set of (workload, candidate) points and emits :class:`CalibrationRow`
entries with relative errors; :func:`print_calibration_table` and
:func:`rows_to_json` render them for humans and for the CI artifact
(``BENCH_autotune.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Sequence

from repro.perf.trainer import simulate_training

from repro.autotune.planner import SearchResult, evaluate_candidate
from repro.autotune.space import Candidate
from repro.autotune.workloads import TuneWorkload

__all__ = [
    "CalibrationRow",
    "calibrate",
    "print_calibration_table",
    "rows_to_json",
    "search_result_to_json",
]


def _rel_err(predicted: float, actual: float) -> float:
    if actual == 0.0:
        return 0.0 if predicted == 0.0 else float("inf")
    return (predicted - actual) / actual


@dataclass
class CalibrationRow:
    """One predicted-vs-simulated comparison point."""

    workload: str
    config: str
    predicted_latency_s: float
    simulated_latency_s: float
    latency_rel_err: float
    predicted_peak_gib: float
    simulated_reserved_gib: float
    memory_rel_err: float
    simulated_oom: bool = False


def calibrate(
    workload: TuneWorkload, candidates: Sequence[Candidate]
) -> list[CalibrationRow]:
    """Predict and simulate each candidate; return the error rows."""
    rows: list[CalibrationRow] = []
    for candidate in candidates:
        plan = evaluate_candidate(workload, candidate)
        config = workload.sim_config(
            name=f"{workload.name} calib", checkpointing=candidate.checkpointing
        )
        config.plan = plan
        result = simulate_training(config)
        predicted_gib = plan.predicted_peak_bytes / (1 << 30)
        rows.append(
            CalibrationRow(
                workload=workload.name,
                config=candidate.label(),
                predicted_latency_s=plan.predicted_latency_s,
                simulated_latency_s=result.iteration_latency,
                latency_rel_err=_rel_err(plan.predicted_latency_s, result.iteration_latency),
                predicted_peak_gib=predicted_gib,
                simulated_reserved_gib=result.peak_reserved_gib,
                memory_rel_err=_rel_err(predicted_gib, result.peak_reserved_gib),
                simulated_oom=result.oom,
            )
        )
    return rows


def print_calibration_table(rows: Iterable[CalibrationRow]) -> None:
    header = (
        f"{'workload':<18} {'config':<58} "
        f"{'pred ms':>9} {'sim ms':>9} {'err':>7} "
        f"{'pred GiB':>9} {'sim GiB':>9} {'err':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        flag = " OOM" if row.simulated_oom else ""
        print(
            f"{row.workload:<18.18} {row.config:<58.58} "
            f"{row.predicted_latency_s * 1e3:>9.2f} {row.simulated_latency_s * 1e3:>9.2f} "
            f"{row.latency_rel_err:>+6.0%} "
            f"{row.predicted_peak_gib:>9.3f} {row.simulated_reserved_gib:>9.3f} "
            f"{row.memory_rel_err:>+6.0%}{flag}"
        )


def rows_to_json(rows: Sequence[CalibrationRow], *, extra: Optional[dict] = None) -> str:
    payload = {"calibration": [asdict(r) for r in rows]}
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, default=str)


def search_result_to_json(result: SearchResult) -> dict:
    """A JSON-safe digest of a planner run (for BENCH_autotune.json)."""

    def plan_digest(plan) -> dict:
        digest = {
            "config": plan.label(),
            "predicted_latency_s": plan.predicted_latency_s,
            "predicted_peak_gib": plan.predicted_peak_bytes / (1 << 30),
        }
        if plan.simulated is not None:
            digest["simulated_latency_s"] = plan.simulated.iteration_latency
            digest["simulated_reserved_gib"] = plan.simulated.peak_reserved_gib
            digest["simulated_oom"] = plan.simulated.oom
        return digest

    return {
        "workload": result.workload,
        "candidates_considered": result.candidates_considered,
        "pruned_by_memory": len(result.pruned),
        "memory_budget_gib": (result.memory_budget or 0.0) / (1 << 30),
        "best": plan_digest(result.best) if result.best is not None else None,
        "validated": [plan_digest(p) for p in result.validated],
        "top_ranked": [plan_digest(p) for p in result.ranked[:10]],
    }
