"""Workload descriptors the autotune planner searches over.

A :class:`TuneWorkload` bundles everything a candidate evaluation
needs: deferred model builders (per checkpointing setting), the loss
closure, the symbolic trace, the topology — plus the conversion to a
:class:`repro.perf.SimConfig` for simulator validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fsdp.deferred_init import deferred_init
from repro.fsdp.wrap import (
    ModuleWrapPolicy,
    WrapUnitPlan,
    describe_wrap_plan,
    size_based_auto_wrap_policy,
)
from repro.hw.comm_model import CollectiveKind, CommModel
from repro.hw.specs import ClusterTopology, cluster_of
from repro.models import DhenConfig, GptConfig, T5Config
from repro.models.dhen import DhenLayer
from repro.models.transformer import TransformerBlock
from repro.nn.module import Module
from repro.perf.trainer import SimConfig
from repro.perf.workloads import (
    DHEN_LOCAL_ROWS,
    dhen_builder,
    dhen_ignored_modules,
    dhen_loss_fn,
    gpt_builder,
    gpt_loss_fn,
    t5_builder,
    t5_loss_fn,
    transformer_flops,
)

from repro.autotune.space import WrapChoice
from repro.autotune.trace import ModelTrace, trace_dhen, trace_mingpt, trace_t5

__all__ = ["TuneWorkload", "gpt_workload", "t5_workload", "dhen_workload"]


@dataclass
class TuneWorkload:
    """One model + cluster the planner tunes a configuration for."""

    name: str
    world_size: int
    batch_size: int
    topology: ClusterTopology
    trace: ModelTrace
    #: checkpointing flag -> zero-arg model builder.
    builders: dict[bool, Callable[[], Module]]
    make_loss: Callable
    wrap_choices: list[WrapChoice]
    flops_of: Callable[[bool], float]  # checkpointing -> FLOPs/iteration
    capacity: Optional[int] = None
    ignored_modules_of: Optional[Callable[[Module], list]] = None
    #: Resident bytes outside the wrap plan (e.g. DHEN sparse shards).
    extra_persistent_bytes: float = 0.0
    #: Serial communication before the first block (DHEN all-to-all).
    extra_serial_s: float = 0.0
    #: Simulation length for validation runs.  Two warmup iterations:
    #: the comm pool's steady-state segment set (gated cross-stream
    #: reuse forces a second rotation buffer) only completes during the
    #: second iteration, and a measured-window cudaMalloc of a large
    #: segment costs milliseconds of mapping time the analytic model
    #: deliberately excludes.
    iterations: int = 2
    warmup: int = 2
    _plans: dict[str, list[WrapUnitPlan]] = field(default_factory=dict)
    _model: Optional[Module] = None

    # ------------------------------------------------------------------
    def checkpointing_options(self) -> list[bool]:
        return sorted(self.builders.keys())

    def deferred_model(self) -> Module:
        """A deferred (meta-device) instance for wrap-plan introspection.

        Built once: the module *tree* is identical across checkpointing
        settings (only the forward differs), so one instance serves
        every candidate.
        """
        if self._model is None:
            builder = self.builders[self.checkpointing_options()[0]]
            self._model = deferred_init(builder)
        return self._model

    def wrap_plan(self, choice: WrapChoice) -> list[WrapUnitPlan]:
        cached = self._plans.get(choice.label)
        if cached is not None:
            return cached
        model = self.deferred_model()
        ignored = self.ignored_modules_of(model) if self.ignored_modules_of else None
        plan = describe_wrap_plan(model, choice.policy, ignored_modules=ignored)
        self._plans[choice.label] = plan
        return plan

    def total_params(self) -> int:
        return sum(u.numel for u in self.wrap_plan(WrapChoice.of(None)))

    def sim_config(self, *, name: Optional[str] = None, checkpointing: Optional[bool] = None) -> SimConfig:
        """Baseline SimConfig; a plan's ``apply`` overlays its knobs."""
        options = self.checkpointing_options()
        if checkpointing is None:
            checkpointing = options[-1]
        builder = self.builders[checkpointing if checkpointing in options else options[0]]
        return SimConfig(
            name=name or self.name,
            build_model=builder,
            make_loss=self.make_loss,
            batch_size=self.batch_size,
            world_size=self.world_size,
            topology=self.topology,
            capacity=self.capacity,
            ignored_modules_of=self.ignored_modules_of,
            model_flops_per_iteration=self.flops_of(checkpointing),
            iterations=self.iterations,
            warmup=self.warmup,
        )


def _default_wrap_choices(block_classes: tuple, total_params: int) -> list[WrapChoice]:
    """Whole-model, per-block, and two size-based granularities."""
    choices = [WrapChoice.of(None), WrapChoice.of(ModuleWrapPolicy(block_classes))]
    for divisor in (8, 32):
        threshold = max(1, total_params // divisor)
        choices.append(WrapChoice.of(size_based_auto_wrap_policy(threshold)))
    return choices


def gpt_workload(
    config: GptConfig,
    *,
    batch_size: int,
    seq_len: Optional[int] = None,
    world_size: int = 8,
    topology: Optional[ClusterTopology] = None,
    capacity: Optional[int] = None,
    name: Optional[str] = None,
) -> TuneWorkload:
    seq = seq_len or config.block_size
    topo = topology or cluster_of(world_size)
    tokens = batch_size * seq
    params = config.approx_params

    def builders_for(ckpt: bool):
        from dataclasses import replace as dc_replace

        return gpt_builder(dc_replace(config, checkpoint_blocks=ckpt))

    return TuneWorkload(
        name=name or f"minGPT[{params / 1e6:.0f}M]",
        world_size=world_size,
        batch_size=batch_size,
        topology=topo,
        capacity=capacity,
        trace=trace_mingpt(config, batch_size, seq),
        builders={False: builders_for(False), True: builders_for(True)},
        make_loss=gpt_loss_fn(config, batch_size, seq),
        wrap_choices=_default_wrap_choices((TransformerBlock,), params),
        flops_of=lambda ckpt: transformer_flops(params, tokens, ckpt),
    )


def t5_workload(
    config: T5Config,
    *,
    batch_size: int,
    seq_len: int,
    world_size: int = 8,
    topology: Optional[ClusterTopology] = None,
    capacity: Optional[int] = None,
    name: Optional[str] = None,
) -> TuneWorkload:
    topo = topology or cluster_of(world_size)
    tokens = batch_size * seq_len * 2  # encoder + decoder streams
    params = config.approx_params

    def builders_for(ckpt: bool):
        from dataclasses import replace as dc_replace

        return t5_builder(dc_replace(config, checkpoint_blocks=ckpt))

    return TuneWorkload(
        name=name or f"T5[{params / 1e6:.0f}M]",
        world_size=world_size,
        batch_size=batch_size,
        topology=topo,
        capacity=capacity,
        trace=trace_t5(config, batch_size, seq_len),
        builders={False: builders_for(False), True: builders_for(True)},
        make_loss=t5_loss_fn(config, batch_size, seq_len),
        wrap_choices=_default_wrap_choices((TransformerBlock,), params),
        flops_of=lambda ckpt: transformer_flops(params, tokens, ckpt),
    )


def dhen_workload(
    config: DhenConfig,
    *,
    batch_size: int,
    world_size: int = 8,
    topology: Optional[ClusterTopology] = None,
    capacity: Optional[int] = None,
    name: Optional[str] = None,
) -> TuneWorkload:
    topo = topology or cluster_of(world_size)
    dense = config.dense_params_approx
    tokens = batch_size * config.num_features
    local_rows = min(DHEN_LOCAL_ROWS, max(1, config.sparse_rows_total // world_size))
    # Resident sparse shard + three table-shaped gradient slots: the
    # embedding backward materializes a dense table gradient, and
    # AccumulateGrad sums out of place (`grad = grad + new`), so the
    # accumulated grad, the incoming grad and the sum coexist — and the
    # ignored table is outside the optimizer, so its grad never clears.
    sparse_bytes = 4.0 * local_rows * config.sparse_dim * 4
    a2a_payload = batch_size * config.num_features * config.sparse_dim * 4
    a2a_s = CommModel(topo).time(
        CollectiveKind.ALL_TO_ALL, a2a_payload, list(range(world_size))
    ) if world_size > 1 else 0.0

    def builders_for(ckpt: bool):
        from dataclasses import replace as dc_replace

        return dhen_builder(dc_replace(config, checkpoint_blocks=ckpt))

    return TuneWorkload(
        name=name or f"DHEN[{dense / 1e6:.0f}M dense]",
        world_size=world_size,
        batch_size=batch_size,
        topology=topo,
        capacity=capacity,
        trace=trace_dhen(config, batch_size),
        builders={False: builders_for(False), True: builders_for(True)},
        make_loss=dhen_loss_fn(config, batch_size),
        wrap_choices=_default_wrap_choices((DhenLayer,), dense),
        flops_of=lambda ckpt: transformer_flops(dense, tokens, ckpt),
        ignored_modules_of=dhen_ignored_modules,
        extra_persistent_bytes=sparse_bytes,
        extra_serial_s=a2a_s,
    )
