"""The ``Tensor`` class: an n-dimensional array on a simulated device.

Functional parity with the subset of ``torch.Tensor`` that FSDP's
design depends on (Sections 2, 3.2.3 and 4 of the paper):

- tensors are *views* over a shared :class:`~repro.storage.Storage`;
  ``view``/``split``/``narrow`` return aliasing tensors, which is what
  lets FlatParameter own the storage of its original parameters;
- ``.data`` can be *reassigned*, atomically repointing a tensor (and
  hence an ``nn.Parameter``) at different storage — how FSDP switches
  parameters between sharded and unsharded storage without changing
  object identity;
- autograd state (``requires_grad``, ``grad``, ``grad_fn``), tensor
  hooks and post-accumulate-grad hooks;
- real numpy data in functional mode, or shape-only "abstract" tensors
  in performance mode — both flow through the same ops, allocator and
  cost models.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro import dtypes
from repro import random as rrandom
from repro.autograd.function import AccumulateGrad, Edge, RemovableHandle
from repro.autograd.grad_mode import is_grad_enabled, no_grad
from repro.cuda.device import Device, cpu_device
from repro.hw.kernel_model import KernelCost
from repro.storage import Storage

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "empty",
    "full",
    "randn",
    "rand",
    "arange",
    "zeros_like",
    "ones_like",
    "empty_like",
    "cat",
    "stack",
    "use_device",
]


def _normalize_shape(shape) -> tuple[int, ...]:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return tuple(int(s) for s in shape)


class Tensor:
    """An n-dimensional array with autograd support."""

    __slots__ = (
        "_storage",
        "_offset",
        "shape",
        "numel",
        "nbytes",
        "dtype",
        "requires_grad",
        "grad",
        "grad_fn",
        "_output_nr",
        "_hooks",
        "_post_accumulate_grad_hooks",
        "_accumulate_grad",
        "_base",
        "_init_records",
        "_fsdp_param_owner",
        "__weakref__",
    )

    def __init__(
        self,
        storage: Storage,
        shape: tuple[int, ...],
        *,
        offset: int = 0,
        dtype: Optional[dtypes.DType] = None,
        requires_grad: bool = False,
        base: Optional["Tensor"] = None,
    ):
        self._storage = storage
        self._offset = offset
        shape = tuple(shape)
        self.shape = shape
        # numel/nbytes are plain attributes, not properties: they're read
        # on every op dispatch and only change when .data is reassigned.
        self.numel = math.prod(shape) if shape else 1
        self.dtype = dtype or storage.dtype
        self.nbytes = self.numel * self.dtype.itemsize
        self.requires_grad = requires_grad
        self.grad: Optional[Tensor] = None
        self.grad_fn = None
        self._output_nr = 0
        self._hooks: dict[int, object] = {}
        self._post_accumulate_grad_hooks: dict[int, object] = {}
        self._accumulate_grad: Optional[AccumulateGrad] = None
        self._base = base
        self._init_records: Optional[list] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def device(self) -> Device:
        return self._storage.device

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_leaf(self) -> bool:
        return self.grad_fn is None

    @property
    def is_materialized(self) -> bool:
        return self._storage.is_materialized

    @property
    def is_meta(self) -> bool:
        return self.device.is_meta

    @property
    def _np(self) -> np.ndarray:
        """The numpy view backing this tensor (functional mode only)."""
        data = self._storage.data
        if data is None:
            raise RuntimeError(
                "tensor is not materialized (abstract or meta mode has no data)"
            )
        return data[self._offset : self._offset + self.numel].reshape(self.shape)

    def size(self, dim: Optional[int] = None):
        return self.shape if dim is None else self.shape[dim]

    def storage_block(self):
        """The allocator block backing this tensor (or None)."""
        return self._storage.block

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]

    def __repr__(self) -> str:
        if self.is_materialized:
            body = np.array2string(self._np, precision=4, threshold=20)
        else:
            body = f"<abstract {self.shape}>"
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({body}, dtype={self.dtype.name}, device={self.device}{grad})"

    # ------------------------------------------------------------------
    # Data repointing (FSDP's storage-swap mechanism)
    # ------------------------------------------------------------------
    @property
    def data(self) -> "Tensor":
        """A detached alias of this tensor (shares storage)."""
        alias = Tensor(
            self._storage,
            self.shape,
            offset=self._offset,
            dtype=self.dtype,
            base=self if self._base is None else self._base,
        )
        return alias

    @data.setter
    def data(self, other: "Tensor") -> None:
        """Repoint this tensor at ``other``'s storage in place."""
        if not isinstance(other, Tensor):
            raise TypeError(".data must be assigned a Tensor")
        self._storage = other._storage
        self._offset = other._offset
        self.shape = other.shape
        self.numel = other.numel
        self.dtype = other.dtype
        self.nbytes = other.nbytes
        self._base = other._base

    # ------------------------------------------------------------------
    # Autograd plumbing
    # ------------------------------------------------------------------
    def _grad_edge(self) -> Optional[Edge]:
        if self.grad_fn is not None:
            return Edge(self.grad_fn, self._output_nr)
        if self.requires_grad:
            if self._accumulate_grad is None:
                self._accumulate_grad = AccumulateGrad(self)
            return Edge(self._accumulate_grad, 0)
        return None

    def requires_grad_(self, requires_grad: bool = True) -> "Tensor":
        if requires_grad and not self.dtype.is_floating:
            raise RuntimeError("only floating point tensors can require gradients")
        self.requires_grad = requires_grad
        return self

    def backward(self, gradient: Optional["Tensor"] = None, retain_graph: bool = False) -> None:
        from repro.autograd.engine import run_backward

        run_backward([self], [gradient], retain_graph=retain_graph)

    def register_hook(self, hook) -> RemovableHandle:
        """Call ``hook(grad)`` when this tensor's gradient is computed."""
        handle = RemovableHandle(self._hooks)
        self._hooks[handle.hook_id] = hook
        return handle

    def register_post_accumulate_grad_hook(self, hook) -> RemovableHandle:
        """Call ``hook(tensor)`` after ``.grad`` is accumulated (leaves)."""
        if self.grad_fn is not None:
            raise RuntimeError("post-accumulate-grad hooks are for leaf tensors")
        if self._accumulate_grad is None:
            self._accumulate_grad = AccumulateGrad(self)
        handle = RemovableHandle(self._accumulate_grad.post_hooks)
        self._accumulate_grad.post_hooks[handle.hook_id] = hook
        return handle

    def detach(self) -> "Tensor":
        return Tensor(
            self._storage,
            self.shape,
            offset=self._offset,
            dtype=self.dtype,
            base=self if self._base is None else self._base,
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        return np.array(self._np)

    def item(self):
        if self.numel != 1:
            raise ValueError("item() requires a single-element tensor")
        return self._np.reshape(()).item()

    def tolist(self):
        return self._np.tolist()

    # ------------------------------------------------------------------
    # Operator sugar (implementations live in repro.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro import ops

        return ops.add(self, _wrap(other, self))

    __radd__ = __add__

    def __sub__(self, other):
        from repro import ops

        return ops.sub(self, _wrap(other, self))

    def __rsub__(self, other):
        from repro import ops

        return ops.sub(_wrap(other, self), self)

    def __mul__(self, other):
        from repro import ops

        return ops.mul(self, _wrap(other, self))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro import ops

        return ops.div(self, _wrap(other, self))

    def __rtruediv__(self, other):
        from repro import ops

        return ops.div(_wrap(other, self), self)

    def __neg__(self):
        from repro import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from repro import ops

        return ops.pow(self, float(exponent))

    def __matmul__(self, other):
        from repro import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro import ops

        return ops.getitem(self, index)

    # Non-differentiable comparisons -----------------------------------
    def _compare(self, other, op_name: str) -> "Tensor":
        other = _wrap(other, self)
        result = getattr(np, op_name)(self._np, other._np)
        return tensor(result, dtype=dtypes.bool_, device=self.device)

    def __eq__(self, other):  # type: ignore[override]
        if not isinstance(other, (Tensor, int, float, np.ndarray)):
            return NotImplemented
        return self._compare(other, "equal")

    def __ne__(self, other):  # type: ignore[override]
        if not isinstance(other, (Tensor, int, float, np.ndarray)):
            return NotImplemented
        return self._compare(other, "not_equal")

    def __lt__(self, other):
        return self._compare(other, "less")

    def __le__(self, other):
        return self._compare(other, "less_equal")

    def __gt__(self, other):
        return self._compare(other, "greater")

    def __ge__(self, other):
        return self._compare(other, "greater_equal")

    __hash__ = object.__hash__

    def __bool__(self) -> bool:
        if self.numel != 1:
            raise RuntimeError(
                "truth value of a multi-element tensor is ambiguous"
            )
        return bool(self._np.reshape(()).item())

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def view(self, *shape) -> "Tensor":
        from repro import ops

        return ops.view(self, _normalize_shape(shape))

    def reshape(self, *shape) -> "Tensor":
        return self.view(*shape)

    def flatten(self) -> "Tensor":
        return self.view(self.numel)

    def split(self, split_size_or_sections, dim: int = 0):
        from repro import ops

        return ops.split(self, split_size_or_sections, dim)

    def narrow(self, dim: int, start: int, length: int) -> "Tensor":
        from repro import ops

        return ops.narrow(self, dim, start, length)

    def transpose(self, dim0: int, dim1: int) -> "Tensor":
        from repro import ops

        return ops.transpose(self, dim0, dim1)

    def t(self) -> "Tensor":
        if self.ndim != 2:
            raise ValueError("t() expects a 2-D tensor")
        return self.transpose(0, 1)

    def permute(self, *dims) -> "Tensor":
        from repro import ops

        return ops.permute(self, _normalize_shape(dims))

    def unsqueeze(self, dim: int) -> "Tensor":
        shape = list(self.shape)
        if dim < 0:
            dim += self.ndim + 1
        shape.insert(dim, 1)
        return self.view(*shape)

    def squeeze(self, dim: int) -> "Tensor":
        shape = list(self.shape)
        if shape[dim] != 1:
            raise ValueError(f"cannot squeeze dim {dim} of size {shape[dim]}")
        del shape[dim]
        return self.view(*shape)

    def expand(self, *shape) -> "Tensor":
        from repro import ops

        return ops.expand(self, _normalize_shape(shape))

    def contiguous(self) -> "Tensor":
        return self

    # ------------------------------------------------------------------
    # Math (differentiable; see repro.ops)
    # ------------------------------------------------------------------
    def sum(self, dim=None, keepdim: bool = False) -> "Tensor":
        from repro import ops

        return ops.sum(self, dim, keepdim)

    def mean(self, dim=None, keepdim: bool = False) -> "Tensor":
        from repro import ops

        return ops.mean(self, dim, keepdim)

    def max(self):
        from repro import ops

        return ops.max(self)

    def sqrt(self) -> "Tensor":
        from repro import ops

        return ops.sqrt(self)

    def exp(self) -> "Tensor":
        from repro import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro import ops

        return ops.log(self)

    def tanh(self) -> "Tensor":
        from repro import ops

        return ops.tanh(self)

    def abs(self) -> "Tensor":
        from repro import ops

        return ops.abs(self)

    def clone(self) -> "Tensor":
        from repro import ops

        return ops.clone(self)

    def pow(self, exponent: float) -> "Tensor":
        from repro import ops

        return ops.pow(self, float(exponent))

    def masked_fill(self, mask: "Tensor", value: float) -> "Tensor":
        from repro import ops

        return ops.masked_fill(self, mask, value)

    def norm(self) -> "Tensor":
        """The 2-norm of the flattened tensor."""
        return (self * self).sum().sqrt()

    # ------------------------------------------------------------------
    # dtype / device movement
    # ------------------------------------------------------------------
    def to(self, device: Optional[Device] = None, dtype: Optional[dtypes.DType] = None) -> "Tensor":
        from repro import ops

        result = self
        if dtype is not None and dtype is not result.dtype:
            result = ops.cast(result, dtype)
        if device is not None and device is not result.device:
            result = ops.to_device(result, device)
        return result

    def float(self) -> "Tensor":
        return self.to(dtype=dtypes.float32)

    def half(self) -> "Tensor":
        return self.to(dtype=dtypes.float16)

    def bfloat16(self) -> "Tensor":
        return self.to(dtype=dtypes.bfloat16)

    def cpu(self) -> "Tensor":
        return self.to(device=cpu_device())

    # ------------------------------------------------------------------
    # In-place ops (non-differentiable; valid under no_grad or on .data)
    # ------------------------------------------------------------------
    def _check_inplace(self) -> None:
        if is_grad_enabled() and self.requires_grad:
            raise RuntimeError(
                "in-place operation on a tensor that requires grad; wrap in no_grad()"
            )

    def _inplace_kernel(
        self, nbytes_factor: float = 2.0, src: Optional["Tensor"] = None
    ) -> None:
        """Account for the bandwidth cost of an in-place elementwise op.

        ``src`` names the tensor read by the kernel (if any); the
        destination is written in place.  Both flow to the stream-order
        sanitizer when it is enabled.
        """
        device = self.device
        if device.is_sim_gpu:
            reads = (
                (src._storage,)
                if src is not None and src._storage.device is device
                else ()
            )
            device.launch(
                KernelCost(bytes_moved=self.nbytes * nbytes_factor),
                self.dtype,
                reads=reads,
                writes=(self._storage,),
            )

    def zero_(self) -> "Tensor":
        self._check_inplace()
        if self.is_materialized:
            self._np[...] = 0
        self._inplace_kernel(1.0)
        self._record_init("zero_")
        return self

    def fill_(self, value: float) -> "Tensor":
        self._check_inplace()
        if self.is_materialized:
            self._np[...] = dtypes.quantize(np.asarray(value), self.dtype)
        self._inplace_kernel(1.0)
        self._record_init("fill_", value)
        return self

    def copy_(self, src: "Tensor") -> "Tensor":
        self._check_inplace()
        if self.shape != src.shape and self.numel != src.numel:
            raise ValueError(f"copy_ shape mismatch: {self.shape} vs {src.shape}")
        if self.is_materialized and src.is_materialized:
            self._np[...] = dtypes.quantize(src._np.reshape(self.shape), self.dtype)
        self._inplace_kernel(2.0, src=src)
        return self

    def add_(self, other, alpha: float = 1.0) -> "Tensor":
        self._check_inplace()
        other = _wrap(other, self)
        if self.is_materialized and other.is_materialized:
            self._np[...] = dtypes.quantize(self._np + alpha * other._np, self.dtype)
        self._inplace_kernel(3.0, src=other)
        return self

    def mul_(self, factor) -> "Tensor":
        self._check_inplace()
        factor_value = factor._np if isinstance(factor, Tensor) else factor
        if self.is_materialized:
            self._np[...] = dtypes.quantize(self._np * factor_value, self.dtype)
        self._inplace_kernel(2.0, src=factor if isinstance(factor, Tensor) else None)
        return self

    def div_(self, divisor) -> "Tensor":
        self._check_inplace()
        divisor_value = divisor._np if isinstance(divisor, Tensor) else divisor
        if self.is_materialized:
            self._np[...] = dtypes.quantize(self._np / divisor_value, self.dtype)
        self._inplace_kernel(2.0, src=divisor if isinstance(divisor, Tensor) else None)
        return self

    def normal_(self, mean: float = 0.0, std: float = 1.0, generator=None) -> "Tensor":
        self._check_inplace()
        seed = rrandom.fork_seed(generator)
        if self.is_materialized:
            rng = rrandom.Generator.numpy_rng(seed)
            self._np[...] = dtypes.quantize(
                rng.normal(mean, std, size=self.shape), self.dtype
            )
        self._inplace_kernel(1.0)
        self._record_init("normal_", mean, std, seed=seed)
        return self

    def uniform_(self, low: float = 0.0, high: float = 1.0, generator=None) -> "Tensor":
        self._check_inplace()
        seed = rrandom.fork_seed(generator)
        if self.is_materialized:
            rng = rrandom.Generator.numpy_rng(seed)
            self._np[...] = dtypes.quantize(
                rng.uniform(low, high, size=self.shape), self.dtype
            )
        self._inplace_kernel(1.0)
        self._record_init("uniform_", low, high, seed=seed)
        return self

    def _record_init(self, op: str, *args, seed: Optional[int] = None) -> None:
        """Record an init op for deferred-initialization replay."""
        if self.device.is_meta:
            if self._init_records is None:
                self._init_records = []
            self._init_records.append((op, args, seed))

    def replay_init_on(self, target: "Tensor") -> None:
        """Replay recorded init ops (Section 3.1) onto ``target``."""
        records = self._init_records or []
        for op, args, seed in records:
            if op == "zero_":
                target.zero_()
            elif op == "fill_":
                target.fill_(*args)
            elif op == "normal_":
                mean, std = args
                if target.is_materialized:
                    rng = rrandom.Generator.numpy_rng(seed)
                    target._np[...] = dtypes.quantize(
                        rng.normal(mean, std, size=target.shape), target.dtype
                    )
                target._inplace_kernel(1.0)
            elif op == "uniform_":
                low, high = args
                if target.is_materialized:
                    rng = rrandom.Generator.numpy_rng(seed)
                    target._np[...] = dtypes.quantize(
                        rng.uniform(low, high, size=target.shape), target.dtype
                    )
                target._inplace_kernel(1.0)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown recorded init op {op!r}")


def _wrap(value, like: Tensor) -> Tensor:
    """Coerce python scalars / numpy arrays to a Tensor like ``like``."""
    if isinstance(value, Tensor):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        device = like.device
        if not device.materialize_data:
            # Abstract/meta mode: no consumer will ever read the scalar's
            # bytes (all math is skipped on unmaterialized inputs), so
            # skip the numpy round-trip and allocate an empty storage.
            return Tensor(Storage(device, like.dtype, 1, materialize=False), ())
        return tensor(
            np.asarray(value, dtype=like.dtype.np_dtype),
            dtype=like.dtype,
            device=device,
        )
    if isinstance(value, np.ndarray):
        return tensor(value, device=like.device)
    raise TypeError(f"cannot operate on Tensor and {type(value).__name__}")


# ----------------------------------------------------------------------
# Factory functions
# ----------------------------------------------------------------------
import contextlib
import threading as _threading

_default_device_tls = _threading.local()


@contextlib.contextmanager
def use_device(device: Device):
    """Route factory calls without an explicit device to ``device``.

    Deferred initialization (Section 3.1) uses this with the meta
    device so third-party model code allocates fake tensors.
    """
    previous = getattr(_default_device_tls, "device", None)
    _default_device_tls.device = device
    try:
        yield device
    finally:
        _default_device_tls.device = previous


def _factory_device(device: Optional[Device]) -> Device:
    if device is not None:
        return device
    override = getattr(_default_device_tls, "device", None)
    return override if override is not None else cpu_device()


def empty(
    *shape,
    dtype: dtypes.DType = dtypes.float32,
    device: Optional[Device] = None,
    requires_grad: bool = False,
) -> Tensor:
    shape = _normalize_shape(shape)
    device = _factory_device(device)
    storage = Storage(device, dtype, math.prod(shape) if shape else 1)
    return Tensor(storage, shape, requires_grad=requires_grad)


def zeros(*shape, dtype=dtypes.float32, device=None, requires_grad=False) -> Tensor:
    out = empty(*shape, dtype=dtype, device=device)
    with no_grad():
        out.zero_()
    out.requires_grad = requires_grad
    return out


def ones(*shape, dtype=dtypes.float32, device=None, requires_grad=False) -> Tensor:
    return full(_normalize_shape(shape), 1.0, dtype=dtype, device=device, requires_grad=requires_grad)


def full(shape, value: float, *, dtype=dtypes.float32, device=None, requires_grad=False) -> Tensor:
    out = empty(*_normalize_shape((shape,) if isinstance(shape, int) else shape), dtype=dtype, device=device)
    with no_grad():
        out.fill_(value)
    out.requires_grad = requires_grad
    return out


def randn(*shape, dtype=dtypes.float32, device=None, requires_grad=False, generator=None) -> Tensor:
    out = empty(*shape, dtype=dtype, device=device)
    with no_grad():
        out.normal_(0.0, 1.0, generator=generator)
    out.requires_grad = requires_grad
    return out


def rand(*shape, dtype=dtypes.float32, device=None, requires_grad=False, generator=None) -> Tensor:
    out = empty(*shape, dtype=dtype, device=device)
    with no_grad():
        out.uniform_(0.0, 1.0, generator=generator)
    out.requires_grad = requires_grad
    return out


def arange(end: int, *, dtype=dtypes.int64, device=None) -> Tensor:
    return tensor(np.arange(end), dtype=dtype, device=device)


def tensor(data, *, dtype: Optional[dtypes.DType] = None, device: Optional[Device] = None) -> Tensor:
    """Build a tensor from python/numpy data (materialized)."""
    device = _factory_device(device)
    array = np.asarray(data)
    if dtype is None:
        if array.dtype.kind == "f":
            dtype = dtypes.float32
            array = array.astype(np.float32)
        else:
            dtype = dtypes.from_numpy_dtype(array.dtype)
    array = dtypes.quantize(array, dtype)
    storage = Storage(device, dtype, array.size, data=array)
    return Tensor(storage, array.shape)


def zeros_like(t: Tensor) -> Tensor:
    return zeros(*t.shape, dtype=t.dtype, device=t.device)


def ones_like(t: Tensor) -> Tensor:
    return ones(*t.shape, dtype=t.dtype, device=t.device)


def empty_like(t: Tensor) -> Tensor:
    return empty(*t.shape, dtype=t.dtype, device=t.device)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    from repro import ops

    return ops.cat(list(tensors), dim)


def stack(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    from repro import ops

    return ops.cat([t.unsqueeze(dim) for t in tensors], dim)
