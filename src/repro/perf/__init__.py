"""Performance simulation: drivers, metrics, workload factories."""

from repro.perf.metrics import GiB, LatencyHistogram, PerfResult, nearest_rank
from repro.perf.timeline import Tracer, merge_intervals, overlap_fraction, trace_device
from repro.perf.trainer import (
    CheckpointStore,
    ElasticResult,
    SimConfig,
    simulate_training,
    sweep,
    train_elastic,
)
from repro.perf import workloads

__all__ = [
    "PerfResult",
    "LatencyHistogram",
    "nearest_rank",
    "GiB",
    "SimConfig",
    "simulate_training",
    "sweep",
    "workloads",
    "Tracer",
    "trace_device",
    "overlap_fraction",
    "merge_intervals",
    "CheckpointStore",
    "ElasticResult",
    "train_elastic",
]
