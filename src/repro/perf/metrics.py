"""Performance metrics collected by the simulation driver."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["PerfResult", "LatencyHistogram", "nearest_rank", "GiB"]

GiB = float(2**30)


def nearest_rank(sorted_samples, q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence.

    The ground-truth definition every streaming estimate in this repo
    is tested against: the ``ceil(q/100 * n)``-th smallest sample.
    """
    n = len(sorted_samples)
    if n == 0:
        raise ValueError("percentile of empty sample set")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * n))
    return sorted_samples[rank - 1]


class LatencyHistogram:
    """Streaming percentile tracker (p50/p95/p99) for latency samples.

    The shared histogram behind every latency report in this repo
    (serving SLOs in ``repro.serve.metrics``, benchmark tables in
    ``repro.bench``).  Two regimes:

    - **exact** — until ``exact_limit`` samples have been seen, every
      sample is kept and percentiles are computed by nearest rank,
      *bitwise* equal to sorted-list ground truth (property-tested in
      ``tests/test_perf_metrics.py``);
    - **bucketed** — beyond the limit, samples fold into geometric
      buckets of relative width ``resolution``; a percentile then
      returns its bucket's upper edge, an overestimate by at most one
      bucket (relative error ≤ ``resolution``), so SLO checks never
      pass on an underestimate.

    Samples must be non-negative (latencies).  Memory is O(exact_limit
    + occupied buckets) regardless of sample count.
    """

    #: Values at or below this floor share bucket 0 (sub-microsecond
    #: latencies are below any SLO resolution this repo cares about).
    FLOOR = 1e-6

    def __init__(self, *, exact_limit: int = 4096, resolution: float = 0.01):
        if exact_limit < 1:
            raise ValueError("exact_limit must be >= 1")
        if resolution <= 0.0:
            raise ValueError("resolution must be positive")
        self.exact_limit = exact_limit
        self.resolution = resolution
        self._log_base = math.log1p(resolution)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.min = math.inf
        self._exact: Optional[list[float]] = []
        self._buckets: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def exact(self) -> bool:
        """Whether percentiles are still bitwise-exact."""
        return self._exact is not None

    def add(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"latency sample must be >= 0, got {value}")
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) > self.exact_limit:
                for sample in self._exact:
                    self._fold(sample)
                self._exact = None
        else:
            self._fold(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _index(self, value: float) -> int:
        if value <= self.FLOOR:
            return 0
        return 1 + int(math.log(value / self.FLOOR) / self._log_base)

    def _upper_edge(self, index: int) -> float:
        if index == 0:
            return self.FLOOR
        return self.FLOOR * math.exp(index * self._log_base)

    def _fold(self, value: float) -> None:
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The q-th percentile (q in (0, 100]) of all samples so far."""
        if self.count == 0:
            raise ValueError("percentile of empty histogram")
        if self._exact is not None:
            return nearest_rank(sorted(self._exact), q)
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Never report past the true maximum (the top bucket's
                # edge can overshoot it by up to one resolution step).
                return min(self._upper_edge(index), self.max)
        return self.max  # pragma: no cover - rank <= count by construction

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one.

        Exactness is preserved only while the combined count fits the
        exact window; merging a bucketed histogram forces this one to
        fold too (resolutions must match for the buckets to align).
        """
        if other.count == 0:
            return
        if other._exact is not None:
            self.extend(other._exact)
            return
        if other.resolution != self.resolution:
            raise ValueError("cannot merge histograms with different resolutions")
        if self._exact is not None:
            for sample in self._exact:
                self._fold(sample)
            self._exact = None
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        self.min = min(self.min, other.min)

    def summary(self) -> dict:
        """JSON-able digest: count, mean, p50/p95/p99, min/max."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                    "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.min,
            "max": self.max,
        }


@dataclass
class PerfResult:
    """Outcome of one simulated training configuration.

    All of the paper's reported metrics (Section 5.1): TFLOPS per GPU,
    latency per batch, QPS, and the three peak-memory series of
    Figure 8 — plus the allocator's retry counter, the paper's
    suggested defragmentation indicator (``num_alloc_retries`` from
    ``torch.cuda.memory_stats()``).
    """

    name: str
    world_size: int
    batch_size: int
    #: Configuration that produced this row (filled by the simulation
    #: driver) so sweep output and autotune output are comparable.
    strategy: str = ""
    backend: str = ""
    sharding_factor: int = 0
    wrap_policy: str = ""
    rate_limit: int = 0  # 0 = limiter off
    backward_prefetch: str = ""
    forward_prefetch: bool = False
    mixed_precision: str = ""
    oom: bool = False
    iteration_latency: float = 0.0
    tflops_per_gpu: float = 0.0
    qps_per_gpu: float = 0.0
    peak_allocated_gib: float = 0.0
    peak_active_gib: float = 0.0
    peak_reserved_gib: float = 0.0
    num_alloc_retries: int = 0
    cross_host_gib: float = 0.0
    comm_gib: float = 0.0
    collectives: int = 0
    #: Fault-injection / elastic-recovery accounting (only nonzero when
    #: a :class:`repro.distributed.FaultSchedule` was installed).
    faults_injected: int = 0
    recoveries: int = 0
    recovered_iterations: int = 0
    recovery_overhead_s: float = 0.0
    #: Simulated fault-to-detection latency (watchdog interval, abort
    #: declaration, or health-probe period), reported separately from
    #: ``recovery_overhead_s`` so detection tuning and restore tuning
    #: can be read independently.
    detection_s: float = 0.0
    #: Checkpoint-free peer-healing accounting (``recovery="heal"``):
    #: simulated seconds spent pulling the failed rank's shards from a
    #: replicate-group peer, how many ranks were healed that way, and
    #: how many failures had to fall back to a checkpoint restore.
    heal_s: float = 0.0
    healed_ranks: int = 0
    heal_fallbacks: int = 0
    #: Checkpointing accounting (elastic runs with a checkpoint writer).
    #: ``checkpoint_save_s`` is issue→durable wall time summed over
    #: saves; ``checkpoint_stall_s`` is the part the training loop
    #: actually waited on (zero for fully-async saves);
    #: ``checkpoint_load_s``/``checkpoint_verify_s`` accrue on restores.
    checkpoint_saves: int = 0
    checkpoint_save_s: float = 0.0
    checkpoint_stall_s: float = 0.0
    checkpoint_load_s: float = 0.0
    checkpoint_verify_s: float = 0.0
    #: Observability metrics (only filled when ``SimConfig.profile`` is
    #: on): per-iteration exposed/overlapped communication seconds and
    #: rate-limiter stall, plus prefetch hit/miss counts over the whole
    #: measured window.  The full per-unit breakdown lands in
    #: ``extras["profiler"]``.
    exposed_comm_s: float = 0.0
    overlapped_comm_s: float = 0.0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    rate_limit_stall_s: float = 0.0
    #: Serving metrics (only filled when the row came from a
    #: ``repro.serve`` fleet simulation): per-request latency
    #: percentiles against the SLO plus admission/queue counters.  The
    #: full serving report lands in ``extras["serving"]``.
    requests_served: int = 0
    requests_shed: int = 0
    requests_timed_out: int = 0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    extras: dict = field(default_factory=dict)

    def config_label(self) -> str:
        """Compact description of the knobs behind this row."""
        if not self.strategy:
            return ""
        parts = [self.strategy]
        if self.backend and self.backend != "flat_param":
            parts.append(self.backend)
        if self.sharding_factor:
            parts.append(f"F={self.sharding_factor}")
        if self.wrap_policy:
            parts.append(f"wrap={self.wrap_policy}")
        parts.append(f"limit={self.rate_limit if self.rate_limit else 'off'}")
        prefetch = self.backward_prefetch or "none"
        if self.forward_prefetch:
            prefetch += "+fwd"
        parts.append(f"prefetch={prefetch}")
        if self.mixed_precision:
            parts.append(self.mixed_precision)
        return " ".join(parts)

    def row(self) -> str:
        if self.oom:
            text = f"{self.name:<42} W={self.world_size:<4} bs={self.batch_size:<5} OOM"
            config = self.config_label()
            return f"{text}  [{config}]" if config else text
        text = (
            f"{self.name:<42} W={self.world_size:<4} bs={self.batch_size:<5} "
            f"lat={self.iteration_latency * 1e3:9.1f}ms  "
            f"TFLOPS/GPU={self.tflops_per_gpu:7.1f}  "
            f"QPS/GPU={self.qps_per_gpu:9.1f}  "
            f"mem(GiB) alloc={self.peak_allocated_gib:6.1f} "
            f"active={self.peak_active_gib:6.1f} reserved={self.peak_reserved_gib:6.1f}  "
            f"retries={self.num_alloc_retries}"
        )
        if self.faults_injected or self.recoveries:
            text += (
                f"  faults={self.faults_injected} recov={self.recoveries}"
                f"/{self.recovered_iterations}it"
                f" det={self.detection_s * 1e3:.1f}ms"
                f" ovh={self.recovery_overhead_s * 1e3:.1f}ms"
            )
            if self.healed_ranks or self.heal_fallbacks:
                text += (
                    f" heal={self.healed_ranks}"
                    f"/{self.heal_s * 1e3:.1f}ms"
                    f" fallback={self.heal_fallbacks}"
                )
        if self.checkpoint_saves:
            text += (
                f"  ckpt={self.checkpoint_saves}"
                f" stall={self.checkpoint_stall_s * 1e3:.1f}ms"
            )
        if self.requests_served:
            text += (
                f"  served={self.requests_served}"
                f" shed={self.requests_shed} timeout={self.requests_timed_out}"
                f" p50={self.latency_p50_s * 1e3:.1f}ms"
                f" p99={self.latency_p99_s * 1e3:.1f}ms"
            )
        config = self.config_label()
        if config:
            text += f"  [{config}]"
        return text
