"""Performance metrics collected by the simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PerfResult", "GiB"]

GiB = float(2**30)


@dataclass
class PerfResult:
    """Outcome of one simulated training configuration.

    All of the paper's reported metrics (Section 5.1): TFLOPS per GPU,
    latency per batch, QPS, and the three peak-memory series of
    Figure 8 — plus the allocator's retry counter, the paper's
    suggested defragmentation indicator (``num_alloc_retries`` from
    ``torch.cuda.memory_stats()``).
    """

    name: str
    world_size: int
    batch_size: int
    #: Configuration that produced this row (filled by the simulation
    #: driver) so sweep output and autotune output are comparable.
    strategy: str = ""
    backend: str = ""
    sharding_factor: int = 0
    wrap_policy: str = ""
    rate_limit: int = 0  # 0 = limiter off
    backward_prefetch: str = ""
    forward_prefetch: bool = False
    mixed_precision: str = ""
    oom: bool = False
    iteration_latency: float = 0.0
    tflops_per_gpu: float = 0.0
    qps_per_gpu: float = 0.0
    peak_allocated_gib: float = 0.0
    peak_active_gib: float = 0.0
    peak_reserved_gib: float = 0.0
    num_alloc_retries: int = 0
    cross_host_gib: float = 0.0
    comm_gib: float = 0.0
    collectives: int = 0
    #: Fault-injection / elastic-recovery accounting (only nonzero when
    #: a :class:`repro.distributed.FaultSchedule` was installed).
    faults_injected: int = 0
    recoveries: int = 0
    recovered_iterations: int = 0
    recovery_overhead_s: float = 0.0
    #: Checkpointing accounting (elastic runs with a checkpoint writer).
    #: ``checkpoint_save_s`` is issue→durable wall time summed over
    #: saves; ``checkpoint_stall_s`` is the part the training loop
    #: actually waited on (zero for fully-async saves);
    #: ``checkpoint_load_s``/``checkpoint_verify_s`` accrue on restores.
    checkpoint_saves: int = 0
    checkpoint_save_s: float = 0.0
    checkpoint_stall_s: float = 0.0
    checkpoint_load_s: float = 0.0
    checkpoint_verify_s: float = 0.0
    #: Observability metrics (only filled when ``SimConfig.profile`` is
    #: on): per-iteration exposed/overlapped communication seconds and
    #: rate-limiter stall, plus prefetch hit/miss counts over the whole
    #: measured window.  The full per-unit breakdown lands in
    #: ``extras["profiler"]``.
    exposed_comm_s: float = 0.0
    overlapped_comm_s: float = 0.0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    rate_limit_stall_s: float = 0.0
    extras: dict = field(default_factory=dict)

    def config_label(self) -> str:
        """Compact description of the knobs behind this row."""
        if not self.strategy:
            return ""
        parts = [self.strategy]
        if self.backend and self.backend != "flat_param":
            parts.append(self.backend)
        if self.sharding_factor:
            parts.append(f"F={self.sharding_factor}")
        if self.wrap_policy:
            parts.append(f"wrap={self.wrap_policy}")
        parts.append(f"limit={self.rate_limit if self.rate_limit else 'off'}")
        prefetch = self.backward_prefetch or "none"
        if self.forward_prefetch:
            prefetch += "+fwd"
        parts.append(f"prefetch={prefetch}")
        if self.mixed_precision:
            parts.append(self.mixed_precision)
        return " ".join(parts)

    def row(self) -> str:
        if self.oom:
            text = f"{self.name:<42} W={self.world_size:<4} bs={self.batch_size:<5} OOM"
            config = self.config_label()
            return f"{text}  [{config}]" if config else text
        text = (
            f"{self.name:<42} W={self.world_size:<4} bs={self.batch_size:<5} "
            f"lat={self.iteration_latency * 1e3:9.1f}ms  "
            f"TFLOPS/GPU={self.tflops_per_gpu:7.1f}  "
            f"QPS/GPU={self.qps_per_gpu:9.1f}  "
            f"mem(GiB) alloc={self.peak_allocated_gib:6.1f} "
            f"active={self.peak_active_gib:6.1f} reserved={self.peak_reserved_gib:6.1f}  "
            f"retries={self.num_alloc_retries}"
        )
        if self.faults_injected or self.recoveries:
            text += (
                f"  faults={self.faults_injected} recov={self.recoveries}"
                f"/{self.recovered_iterations}it"
                f" ovh={self.recovery_overhead_s * 1e3:.1f}ms"
            )
        if self.checkpoint_saves:
            text += (
                f"  ckpt={self.checkpoint_saves}"
                f" stall={self.checkpoint_stall_s * 1e3:.1f}ms"
            )
        config = self.config_label()
        if config:
            text += f"  [{config}]"
        return text
