"""Execution timeline tracing (Figure 5's overlap diagram, measured).

A :class:`Tracer` attached to a simulated device records every kernel
and collective as ``(name, stream, start, end)`` events.  It can

- export a Chrome-trace JSON (load in ``chrome://tracing`` / Perfetto),
- render an ASCII Gantt chart of the streams — the reproduction of the
  paper's Figure 5, generated from an actual simulated iteration,
- compute the communication/computation overlap fraction, the
  quantity all of Section 3.3 optimizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.cuda.device import Device

__all__ = [
    "TraceEvent",
    "Tracer",
    "trace_device",
    "overlap_fraction",
    "merge_intervals",
]


def merge_intervals(intervals) -> list[tuple[float, float]]:
    """Coalesce overlapping/adjacent ``(start, end)`` intervals.

    Interval analyses (like :func:`overlap_fraction`) must run on
    *disjoint* intervals: intersecting two lists that each contain
    internal overlap counts the doubly-covered time twice.
    """
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class TraceEvent:
    name: str
    stream: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects kernel/collective events from one device.

    Events are buffered as plain tuples on the hot path (``record`` runs
    once per simulated kernel); :class:`TraceEvent` objects are
    materialized lazily the first time ``events`` is read.  Zero-duration
    events — e.g. collectives whose transfer rounds to nothing — are
    recorded as instant *marks* rather than silently dropped, so event
    counts reconcile with the flight recorder's issue counts.
    """

    def __init__(self):
        self._raw: list[tuple[str, str, float, float]] = []
        self._materialized: Optional[list[TraceEvent]] = None
        #: Instant annotations ``(name, time)`` — fault injections,
        #: watchdog aborts, retries, zero-duration kernels.
        self.marks: list[tuple[str, float]] = []
        self.enabled = True

    @property
    def events(self) -> list[TraceEvent]:
        """Recorded events as :class:`TraceEvent` objects (lazy)."""
        cached = self._materialized
        if cached is None or len(cached) != len(self._raw):
            cached = [TraceEvent(*raw) for raw in self._raw]
            self._materialized = cached
        return cached

    def record(self, name: str, stream: str, start: float, end: float) -> None:
        if self.enabled:
            if end > start:
                self._raw.append((name, stream, start, end))
            else:
                self.marks.append((name, start))

    def record_mark(self, name: str, time: float) -> None:
        """Record an instant event (rendered as a Chrome-trace arrow)."""
        if self.enabled:
            self.marks.append((name, time))

    def clear(self) -> None:
        self._raw.clear()
        self._materialized = None
        self.marks.clear()

    def sanitizer_marks(self) -> list[tuple[str, float]]:
        """Instant events emitted by the stream-order sanitizer.

        Each is ``("sanitizer:<kind>", time)`` — present whenever a
        violation was detected while this tracer was installed (the
        sanitizer emits the mark before raising, so traces show where
        in the timeline the hazard occurred).
        """
        return [(name, t) for name, t in self.marks if name.startswith("sanitizer:")]

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def by_stream(self) -> dict[str, list[TraceEvent]]:
        streams: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            streams.setdefault(event.stream, []).append(event)
        return streams

    def busy_intervals(self, stream_filter) -> list[tuple[float, float]]:
        """Merged busy intervals of streams matching ``stream_filter``."""
        return merge_intervals(
            (start, end)
            for name, stream, start, end in self._raw
            if stream_filter(stream)
        )

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_chrome_trace(self, path: str) -> None:
        """Write a Chrome-trace JSON (times in microseconds)."""
        records = [
            {
                "name": event.name,
                "ph": "X",
                "ts": event.start * 1e6,
                "dur": event.duration * 1e6,
                "pid": 0,
                "tid": event.stream,
            }
            for event in self.events
        ]
        records.extend(
            {
                "name": name,
                "ph": "i",
                "ts": time * 1e6,
                "pid": 0,
                "tid": "marks",
                "s": "g",
            }
            for name, time in self.marks
        )
        with open(path, "w") as f:
            json.dump({"traceEvents": records}, f)

    def ascii_gantt(self, width: int = 100, max_streams: int = 6) -> str:
        """Render the streams as an ASCII Gantt chart (Figure 5 style)."""
        if not self.events:
            return "(no events)"
        t0 = min(e.start for e in self.events)
        t1 = max(e.end for e in self.events)
        span = max(t1 - t0, 1e-12)
        lines = [f"timeline: {span * 1e3:.2f} ms total"]
        for stream, events in sorted(self.by_stream().items())[:max_streams]:
            row = [" "] * width
            for event in events:
                lo = int((event.start - t0) / span * (width - 1))
                hi = max(lo + 1, int((event.end - t0) / span * (width - 1)) + 1)
                glyph = _glyph_for(event.name)
                for i in range(lo, min(hi, width)):
                    row[i] = glyph
            lines.append(f"{stream:>14} |{''.join(row)}|")
        lines.append(
            f"{'':>14}  {'#'}=compute  A=all-gather  R=reduce-scatter/all-reduce"
            "  S=serve  o=other"
        )
        return "\n".join(lines)


def _glyph_for(name: str) -> str:
    lowered = name.lower()
    if lowered.startswith("serve:"):
        return "S"
    if "all_gather" in lowered:
        return "A"
    if "reduce" in lowered:
        return "R"
    if "kernel" in lowered or "compute" in lowered:
        return "#"
    return "o"


def trace_device(device: Device) -> Tracer:
    """Attach a tracer to ``device`` via its stream-level trace hook.

    Every kernel and collective subsequently enqueued on any of the
    device's streams is recorded (with the collective kind as label).
    """
    tracer = Tracer()
    device.trace_hook = tracer.record
    device.mark_hook = tracer.record_mark
    return tracer


def overlap_fraction(tracer: Tracer) -> float:
    """Fraction of communication time hidden under computation.

    Both sides are disjoint, sorted intervals (``busy_intervals``
    merges), intersected with a two-pointer sweep — doubly-covered time
    (e.g. concurrent kernels on overlapping compute events) is counted
    once, never twice, so the fraction is guaranteed to stay in
    ``[0, 1]``.
    """
    comm = tracer.busy_intervals(lambda s: "unshard" in s or "comm" in s)
    compute = tracer.busy_intervals(lambda s: "default" in s)
    comm_total = sum(end - start for start, end in comm)
    if comm_total == 0:
        return 1.0
    hidden = 0.0
    i = j = 0
    while i < len(comm) and j < len(compute):
        lo = max(comm[i][0], compute[j][0])
        hi = min(comm[i][1], compute[j][1])
        if hi > lo:
            hidden += hi - lo
        if comm[i][1] <= compute[j][1]:
            i += 1
        else:
            j += 1
    return hidden / comm_total
