"""Training-loop simulation driver.

Runs paper-scale models in *abstract* mode (shapes, kernel costs and
allocator traffic flow; no real data) on the symmetric single-rank
backend, producing the metrics of Section 5: TFLOPS per GPU, latency
per batch, QPS, peak allocated/active/reserved memory and the
cudaMalloc-retry count.

The same driver runs DDP (model fully replicated — expected to OOM for
large models, Figure 6(a)) and FSDP in any sharding configuration.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro import distributed as dist
from repro.cuda import sanitizer as _sanitizer
from repro.cuda.device import Device
from repro.ddp import DistributedDataParallel
from repro.distributed.fault import FaultInjector, FaultSchedule
from repro.distributed.process_group import DEFAULT_COLLECTIVE_TIMEOUT, ReduceOp
from repro.errors import (
    CheckpointCorruptionError,
    CollectiveFailedError,
    CollectiveTimeoutError,
    DistributedError,
    OutOfMemoryError,
    RankCrashedError,
    RankFailureError,
)
from repro.fsdp import (
    BackwardPrefetch,
    FullyShardedDataParallel,
    MixedPrecision,
    ShardingStrategy,
)
from repro.fsdp.deferred_init import deferred_init
from repro.hw.specs import ClusterTopology
from repro.nn.module import Module
from repro.optim import Adam, SGD
from repro.perf.metrics import GiB, PerfResult
from repro.resilience import (
    DEFAULT_HEALTH_PROBE_S,
    PEER_HEAL_BANDWIDTH,
    HealContext,
    payload_nbytes,
)
from repro.tensor import Tensor

__all__ = [
    "SimConfig",
    "simulate_training",
    "CheckpointStore",
    "ElasticResult",
    "train_elastic",
]

LossFn = Callable[[Module, Device], "object"]

#: Errors the elastic loop treats as recoverable rank failures.  A
#: corrupted checkpoint is recoverable too: the store quarantines it and
#: the respawned world restores from an older verified-good iteration.
RECOVERABLE_ERRORS = (
    RankCrashedError,
    RankFailureError,
    CollectiveTimeoutError,
    CollectiveFailedError,
    CheckpointCorruptionError,
)

#: Simulated host→device restore bandwidth for checkpoint reloads.
CHECKPOINT_RESTORE_BANDWIDTH = 5 * GiB  # bytes/s

#: Simulated checksum-verify throughput at restore time (CRC pass over
#: every shard before trusting it — see repro.checkpoint.store).
CHECKPOINT_VERIFY_BANDWIDTH = 10 * GiB  # bytes/s


@dataclass
class SimConfig:
    """One simulated training configuration."""

    name: str
    build_model: Callable[[], Module]
    make_loss: LossFn
    batch_size: int
    world_size: int
    parallelism: str = "fsdp"  # "fsdp" | "ddp"
    #: FSDP sharding backend: "flat_param" (one FlatParameter per unit)
    #: or "per_param" (dim-0 sharding per parameter, zero padding).
    backend: str = "flat_param"
    sharding_strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD
    sharding_factor: Optional[int] = None
    auto_wrap_policy: Optional[Callable[[Module], bool]] = None
    #: Human-readable name for ``auto_wrap_policy`` (reported in
    #: PerfResult; policies constructed by repro.fsdp.wrap carry their
    #: own label and don't need this).
    wrap_policy_label: Optional[str] = None
    #: An :class:`repro.autotune.AutotunePlan` (duck-typed: anything
    #: with ``apply(config) -> SimConfig``).  When set, the plan's
    #: chosen knobs override the corresponding fields above before the
    #: simulation starts.
    plan: Optional[object] = None
    mixed_precision: Optional[MixedPrecision] = None
    backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE
    forward_prefetch: bool = False
    limit_all_gathers: bool = True
    rate_limit_inflight: int = 2
    reshard_after_forward: Optional[bool] = None
    optimizer: str = "adam"
    #: Multi-tensor optimizer updates (``Adam(foreach=True)``): one
    #: fused kernel launch per step instead of ~10 per parameter leaf.
    #: Bitwise-identical math; matters for backend="per_param" where
    #: the optimizer sees every parameter instead of one flat buffer.
    foreach_optimizer: bool = False
    iterations: int = 2
    warmup: int = 1
    topology: Optional[ClusterTopology] = None
    capacity: Optional[int] = None
    model_flops_per_iteration: Optional[float] = None
    #: Given the built model, return modules FSDP must not shard
    #: (e.g. DHEN's model-parallel sparse tables).
    ignored_modules_of: Optional[Callable[[Module], list]] = None
    #: Keep parameter shards in host memory (CPUOffload).
    cpu_offload: bool = False
    #: Gradient-accumulation microbatches per optimizer step (1 = off).
    accumulate_steps: int = 1
    #: Accumulate under no_sync (skip communication; unsharded grads).
    accumulate_no_sync: bool = False
    #: Deterministic fault schedule injected into every collective and
    #: iteration boundary (None = healthy cluster).
    faults: Optional[FaultSchedule] = None
    #: Pre-built injector (overrides ``faults``; lets callers inspect
    #: the injected-fault log after the run).
    fault_injector: Optional[FaultInjector] = None
    #: Per-collective watchdog deadline (simulated seconds).
    collective_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT
    #: Recover from rank failures by rewinding to the latest checkpoint
    #: instead of propagating the error.
    elastic: bool = False
    #: Elastic recovery mode: "restore" rewinds every rank to the latest
    #: checkpoint; "heal" (hybrid sharding only) restores the failed
    #: rank's shards from a surviving replicate-group peer at link
    #: bandwidth — survivors keep their live state and only the
    #: interrupted iteration is replayed.  Non-hybrid strategies and
    #: checkpoint-corruption failures fall back to "restore" (counted in
    #: ``PerfResult.heal_fallbacks``).
    recovery: str = "restore"
    #: Install the coordinated-abort latch: the first watchdog to
    #: declare a failure poisons every group, so survivors stall for
    #: ~one watchdog interval instead of draining pending collectives
    #: serially.  ``False`` is the uncoordinated negative control.
    coordinated_abort: bool = True
    #: Sharded-checkpoint cadence for the elastic loop (iterations).
    checkpoint_every: int = 1
    #: Snapshot shards on a dedicated side stream and commit them with a
    #: simulated background writer (overlapped with training).  False =
    #: synchronous saves: the loop blocks until each checkpoint is
    #: durable — the exposed stall async checkpointing removes, at the
    #: price of a larger loss-of-work window on failure.
    async_checkpoint: bool = True
    #: Give up after this many recoveries.
    max_recoveries: int = 4
    #: Install a :class:`repro.profiler.ProfilerSession` for the run;
    #: fills the observability fields of :class:`PerfResult` and stores
    #: the full per-unit report in ``result.extras["profiler"]``.
    profile: bool = False
    #: Pre-built session (overrides ``profile``; lets callers keep the
    #: session for trace export after the run).
    profiler: Optional[object] = None
    #: Graph-capture compiler (repro.compile): iteration one runs eager
    #: under a recording hook, every later iteration replays a
    #: bucketed/reordered collective schedule proven equivalent by the
    #: compile-time verifier.
    compile: bool = False
    #: Bucket knee override in elements (None = Figure-2 ~33M).
    compile_bucket_elems: Optional[int] = None
    #: Transient-memory bound (bytes) the reorder pass must respect.
    compile_memory_budget: Optional[int] = None
    #: A :class:`repro.autotune.trace.ModelTrace` supplying per-unit
    #: activation liveness for the memory-budget proof.
    compile_trace: Optional[object] = None
    #: Steady-state fast-forward for timing-only (meta/abstract) runs:
    #: once two consecutive measured iterations advance every simulator
    #: clock and counter by the *same* delta, the remaining iterations
    #: are extrapolated instead of re-executed.  Automatically disabled
    #: whenever anything observes per-event state (tracing, profiler,
    #: flight recorder, sanitizer, fault injection, checkpointing, or
    #: materialized data), so traced timelines and real-data losses
    #: always come from the full event-by-event simulation.
    fast_forward: bool = True


def _wrap_model(config: SimConfig, device: Device) -> Module:
    if config.parallelism == "ddp":
        # DDP fully materializes the replica on the device: this is
        # where >2.28B models hit out-of-memory (Figure 6(a)).
        from repro.fsdp.deferred_init import materialize_module

        model = deferred_init(config.build_model)
        materialize_module(model, device)
        return DistributedDataParallel(model, broadcast_parameters=False)
    if config.backend == "per_param":
        return _annotate_per_param(config, device)
    model = deferred_init(config.build_model)
    ignored = config.ignored_modules_of(model) if config.ignored_modules_of else None
    from repro.fsdp import CPUOffload

    wrapped = FullyShardedDataParallel(
        model,
        ignored_modules=ignored,
        cpu_offload=CPUOffload(offload_params=True) if config.cpu_offload else None,
        sharding_strategy=config.sharding_strategy,
        sharding_factor=config.sharding_factor,
        auto_wrap_policy=config.auto_wrap_policy,
        mixed_precision=config.mixed_precision,
        backward_prefetch=config.backward_prefetch,
        forward_prefetch=config.forward_prefetch,
        limit_all_gathers=config.limit_all_gathers,
        rate_limit_inflight=config.rate_limit_inflight,
        compile=config.compile,
        compile_bucket_elems=config.compile_bucket_elems,
        compile_memory_budget=config.compile_memory_budget,
        device=device,
    )
    if config.reshard_after_forward is not None:
        for unit in _all_units(wrapped):
            unit.reshard_after_forward = config.reshard_after_forward
    return wrapped


def _annotate_per_param(config: SimConfig, device: Device) -> Module:
    """Build the model annotated with per-parameter fully_shard units.

    The per_param backend has no wrapper object, so features that live
    on the wrapper (no_sync, ignored modules, CPU offload) are rejected
    up front with a typed error rather than silently ignored.
    """
    from repro.errors import FsdpError
    from repro.fsdp.fully_shard import fully_shard

    if config.cpu_offload:
        raise FsdpError("backend='per_param' does not support cpu_offload")
    if config.ignored_modules_of is not None:
        raise FsdpError("backend='per_param' does not support ignored_modules_of")
    if config.accumulate_no_sync:
        raise FsdpError(
            "backend='per_param' does not support accumulate_no_sync "
            "(no wrapper to provide no_sync); use accumulate_steps with "
            "reduction instead"
        )
    model = deferred_init(config.build_model)
    shared = dict(
        backend="per_param",
        sharding_strategy=config.sharding_strategy,
        sharding_factor=config.sharding_factor,
        mixed_precision=config.mixed_precision,
        backward_prefetch=config.backward_prefetch,
        forward_prefetch=config.forward_prefetch,
        limit_all_gathers=config.limit_all_gathers,
        rate_limit_inflight=config.rate_limit_inflight,
        compile=config.compile,
        compile_bucket_elems=config.compile_bucket_elems,
        compile_memory_budget=config.compile_memory_budget,
        device=device,
    )
    # Labels follow the wrapper's convention ("<RootClass>.<path>") so
    # profiler traces are comparable across backends.
    root_label = type(model).__name__
    if config.auto_wrap_policy is not None:
        # Annotate bottom-up: named_modules yields parents before
        # children, so walk it in reverse to satisfy fully_shard's
        # inner-first ordering requirement.
        for path, sub in reversed(list(model.named_modules())):
            if sub is model:
                continue
            if config.auto_wrap_policy(sub):
                fully_shard(sub, label=f"{root_label}.{path}", **shared)
    fully_shard(model, label=root_label, **shared)
    if config.reshard_after_forward is not None:
        for unit in _all_units(model):
            unit.reshard_after_forward = config.reshard_after_forward
    return model


def _all_units(wrapped: Module):
    from repro.fsdp.api import _units_under

    return _units_under(wrapped)


def _run_iteration(config: SimConfig, wrapped: Module, device: Device, optimizer) -> None:
    if config.accumulate_steps > 1 and config.parallelism == "fsdp":
        # Gradient accumulation (Section 3.3.4): the first
        # accumulate_steps-1 microbatches either still reduce
        # (with communication) or run under no_sync (without).
        import contextlib

        for micro in range(config.accumulate_steps - 1):
            scope = (
                wrapped.no_sync()
                if config.accumulate_no_sync
                else contextlib.nullcontext()
            )
            with scope:
                config.make_loss(wrapped, device).backward()
    loss = config.make_loss(wrapped, device)
    loss.backward()
    optimizer.step()
    optimizer.zero_grad()


def _fast_forward_safe(config: SimConfig, device: Device, injector, session, writer) -> bool:
    """True when skipping iterations cannot change any observable output.

    Anything that records *per-event* state (rather than aggregate
    clocks and counters) forces the full simulation: trace/mark hooks,
    the profiler, the flight recorder, the stream-order sanitizer, fault
    injection and elastic checkpointing.  Materialized data disables it
    too — real losses must come from actually executing every op.
    """
    return (
        config.fast_forward
        and not device.materialize_data
        and injector is None
        and session is None
        and writer is None
        and not config.elastic
        and device.trace_hook is None
        and device.mark_hook is None
        and device.profiler is None
        and device.flight_recorder is None
        and device.fault_injector is None
        and _sanitizer._ACTIVE is None
    )


def _sim_fingerprint(device: Device, groups) -> tuple:
    """Snapshot of every clock and cumulative counter the run reports."""
    stats = device.allocator.stats
    return (
        device._cpu_time,
        tuple((s.ready_time, s.kernels_enqueued) for s in device.streams),
        device.flops_total,
        device.kernels_launched,
        tuple((g.bytes_sent, g.cross_host_bytes, g.collective_count) for g in groups),
        # Allocator state must be *unchanged* across an iteration for the
        # system to be periodic (every temporary freed, no new segments,
        # no new peaks, no retries).
        (
            stats.allocated_bytes,
            stats.reserved_bytes,
            stats.allocated_peak,
            stats.active_peak,
            stats.reserved_peak,
            stats.num_alloc_retries,
            stats.num_cuda_mallocs,
            len(device.allocator._segments),
        ),
    )


def _iteration_delta(before: tuple, after: tuple) -> Optional[tuple]:
    """Per-iteration advance between two fingerprints, or ``None`` if the
    iteration changed structure (new streams, allocator drift)."""
    if len(before[1]) != len(after[1]) or before[5] != after[5]:
        return None
    return (
        after[0] - before[0],
        tuple((rb - ra, kb - ka) for (ra, ka), (rb, kb) in zip(before[1], after[1])),
        after[2] - before[2],
        after[3] - before[3],
        tuple(
            (bb - ba, cb - ca, nb - na)
            for (ba, ca, na), (bb, cb, nb) in zip(before[4], after[4])
        ),
    )


def _deltas_match(a: tuple, b: tuple) -> bool:
    """Two consecutive iteration deltas agree (ints exact, floats to a
    relative tolerance that absorbs summation rounding)."""
    import math

    def close(x: float, y: float) -> bool:
        return x == y or math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)

    if a[3] != b[3] or len(a[1]) != len(b[1]) or len(a[4]) != len(b[4]):
        return False
    if not close(a[0], b[0]) or not close(a[2], b[2]):
        return False
    for (ra, ka), (rb, kb) in zip(a[1], b[1]):
        if ka != kb or not close(ra, rb):
            return False
    return a[4] == b[4]


def _apply_fast_forward(device: Device, groups, delta: tuple, iterations: int) -> None:
    """Advance every clock and counter by ``iterations`` steady-state steps."""
    cpu_d, stream_d, flops_d, kernels_d, comm_d = delta
    device._cpu_time += cpu_d * iterations
    for stream, (ready_d, enq_d) in zip(device.streams, stream_d):
        stream.ready_time += ready_d * iterations
        stream.kernels_enqueued += enq_d * iterations
    device.flops_total += flops_d * iterations
    device.kernels_launched += kernels_d * iterations
    for group, (bytes_d, cross_d, count_d) in zip(groups, comm_d):
        group.bytes_sent += bytes_d * iterations
        group.cross_host_bytes += cross_d * iterations
        group.collective_count += count_d * iterations


def _runtime_of(wrapped: Module):
    for unit in _all_units(wrapped):
        if unit.runtime is not None:
            return unit.runtime
    return None


def _apply_compile_liveness(config: SimConfig, wrapped: Module) -> None:
    """Feed measured activation liveness to the compiler's reorder pass.

    ``compile_trace`` indexes units by module *path* ('' for the root)
    while the runtime labels them "<RootClass>.<path>"; strip the root
    prefix to join the two.  Runs after the first (eager, captured)
    iteration — the runtime exists by then and compilation only happens
    at the second iteration's begin, so the settings land in time.
    """
    trace = config.compile_trace
    runtime = _runtime_of(wrapped)
    if trace is None or runtime is None or runtime.compile_settings is None:
        return
    units = [u for u in _all_units(wrapped) if u.handle is not None]
    if not units:
        return
    paths = {
        u.label: (u.label.split(".", 1)[1] if "." in u.label else "")
        for u in units
    }
    elem_size = units[0].handle.compute_dtype.itemsize
    by_path = trace.unit_liveness(sorted(set(paths.values())), elem_size=elem_size)
    runtime.compile_settings.liveness = {
        label: by_path.get(path, (0, 0)) for label, path in paths.items()
    }


def _checkpoint_nbytes(wrapped: Module, optimizer) -> int:
    """Bytes in one rank's shard of a model+optimizer checkpoint."""
    total = 0
    for unit in _all_units(wrapped):
        if unit.handle is None:
            continue
        total += unit.handle.sharded_nbytes
        total += unit.handle.optim_state_nbytes(optimizer)
    return total


def _restore_cost_s(wrapped: Module, optimizer) -> float:
    """Simulated time to reload the local sharded checkpoint."""
    return _checkpoint_nbytes(wrapped, optimizer) / CHECKPOINT_RESTORE_BANDWIDTH


def _detection_latency(failure: BaseException) -> float:
    """Simulated time between the fault and the job *knowing* about it.

    A hang is noticed by the collective watchdog (one timeout interval,
    or the coordinated abort's declared detection time); a silent crash
    by the out-of-band elastic-agent health probe; a corrupted
    checkpoint surfaces synchronously at load and costs nothing extra.
    """
    if isinstance(failure, RankFailureError):
        return failure.detection_s
    if isinstance(failure, CollectiveTimeoutError):
        return failure.timeout
    if isinstance(failure, RankCrashedError):
        return DEFAULT_HEALTH_PROBE_S
    return 0.0


def simulate_training(config: SimConfig) -> PerfResult:
    """Simulate a few training iterations; returns steady-state metrics.

    With ``config.faults`` set, the fault injector is consulted on every
    collective and at each iteration boundary; with ``config.elastic``
    also set, recoverable failures (crash / collective timeout /
    exhausted retries) rewind to the latest sharded checkpoint, charge a
    simulated restore cost, and re-execute the lost iterations — the
    wasted time is reported as ``recovery_overhead_s``.
    """
    if config.plan is not None:
        config = config.plan.apply(config)
    dist.shutdown()
    injector = config.fault_injector
    if injector is None and config.faults is not None:
        injector = FaultInjector(config.faults)
    ctx = dist.init_single_process(
        config.world_size,
        topology=config.topology,
        materialize=False,
        capacity=config.capacity,
        fault_injector=injector,
        collective_timeout=config.collective_timeout,
        coordinated_abort=config.coordinated_abort,
    )
    device = ctx.device
    session = None
    if config.profiler is not None or config.profile:
        from repro.profiler import ProfilerSession

        session = config.profiler or ProfilerSession()
        session.install(device)
    result = PerfResult(
        name=config.name, world_size=config.world_size, batch_size=config.batch_size
    )
    _record_config(result, config)
    try:
        wrapped = _wrap_model(config, device)
        if config.parallelism == "fsdp":
            units = [u for u in _all_units(wrapped) if u.handle is not None]
            if units:
                result.sharding_factor = units[0].plan.sharding_factor
        params = list(wrapped.parameters())
        if config.ignored_modules_of is not None and config.parallelism == "fsdp":
            # Ignored (model-parallel sparse) parameters use their own
            # streaming optimizer in production whose cost scales with
            # touched rows, not table size; exclude them from the dense
            # optimizer here.
            from repro.fsdp.flat_param import FlatParameter

            params = [p for p in params if isinstance(p, FlatParameter)]
        if config.optimizer == "adam":
            optimizer = Adam(params, lr=1e-4, foreach=config.foreach_optimizer)
        else:
            optimizer = SGD(params, lr=1e-2)

        writer = None
        if config.elastic and config.checkpoint_every:
            from repro.checkpoint import AsyncCheckpointWriter

            writer = AsyncCheckpointWriter(device, async_=config.async_checkpoint)

        latency = 0.0
        flops = 0.0
        comm_before = cross_before = coll_before = 0
        total = config.warmup + config.iterations
        completed = 0
        last_checkpoint = 0
        measuring = False
        ff_enabled = _fast_forward_safe(config, device, injector, session, writer)
        ff_prev_fp = None
        ff_prev_delta = None
        # Simulated start time of each iteration's first execution, so a
        # rewind knows how much wall (simulated) time it discards.
        iteration_started: dict[int, float] = {}
        while completed < total:
            iteration = completed
            try:
                if injector is not None:
                    device.allocator.set_pressure(
                        injector.pressure_bytes(ctx.rank, iteration)
                    )
                    injector.begin_iteration(ctx.rank, iteration)
                if not measuring and iteration >= config.warmup:
                    measuring = True
                    device.reset_peak_memory_stats()
                    groups = _groups_of(wrapped)
                    comm_before = sum(g.bytes_sent for g in groups)
                    cross_before = sum(g.cross_host_bytes for g in groups)
                    coll_before = sum(g.collective_count for g in groups)
                    device.synchronize()
                    if session is not None:
                        session.begin_measurement()
                    start_time = device.now()
                    start_flops = device.flops_total
                iteration_started.setdefault(iteration, device.now())
                _run_iteration(config, wrapped, device, optimizer)
                completed += 1
                if completed == 1 and config.compile:
                    _apply_compile_liveness(config, wrapped)
                if ff_enabled and measuring and completed < total:
                    fp = _sim_fingerprint(device, groups)
                    if ff_prev_fp is not None:
                        delta = _iteration_delta(ff_prev_fp, fp)
                        if (
                            delta is not None
                            and ff_prev_delta is not None
                            and _deltas_match(ff_prev_delta, delta)
                        ):
                            remaining = total - completed
                            _apply_fast_forward(device, groups, delta, remaining)
                            result.extras["fast_forwarded_iterations"] = remaining
                            completed = total
                            continue
                        ff_prev_delta = delta
                    ff_prev_fp = fp
                if config.checkpoint_every and completed % config.checkpoint_every == 0:
                    last_checkpoint = completed
                    if writer is not None:
                        writer.save(
                            iteration=completed,
                            nbytes=_checkpoint_nbytes(wrapped, optimizer),
                        )
            except RECOVERABLE_ERRORS as failure:
                result.recoveries += 1
                if not config.elastic or result.recoveries > config.max_recoveries:
                    raise
                if injector is not None:
                    injector.advance_generation()
                runtime = _runtime_of(wrapped)
                if runtime is not None:
                    runtime.reset_after_failure()
                optimizer.zero_grad()
                detection = _detection_latency(failure)
                if isinstance(failure, RankCrashedError):
                    # The death itself is silent; the health probe's
                    # interval passes before the controller reacts.
                    device.consume_cpu(detection)
                result.detection_s += detection
                if device.abort is not None:
                    # Clear the poisoned latch so the recovered world's
                    # collectives stop failing fast.
                    device.abort.reset()
                crash_time = device.now()
                device.synchronize()
                heal = (
                    config.recovery == "heal"
                    and config.parallelism == "fsdp"
                    and config.sharding_strategy.is_hybrid
                    and not isinstance(failure, CheckpointCorruptionError)
                )
                if config.recovery == "heal" and not heal:
                    result.heal_fallbacks += 1
                if heal:
                    # Checkpoint-free peer heal (hybrid sharding): the
                    # replacement rank pulls its shards + optimizer
                    # state from a replicate-group peer at link
                    # bandwidth; survivors keep their live state, so
                    # only the interrupted iteration is replayed.
                    wasted_since = iteration_started.get(completed)
                    if wasted_since is not None:
                        result.recovery_overhead_s += max(
                            0.0, device.now() - wasted_since - detection
                        )
                    heal_s = _checkpoint_nbytes(wrapped, optimizer) / PEER_HEAL_BANDWIDTH
                    if session is not None:
                        with session.scoped("heal:peer-restore"):
                            device.consume_cpu(heal_s)
                    else:
                        device.consume_cpu(heal_s)
                    device.emit_mark("heal:peer-restore")
                    result.heal_s += heal_s
                    result.healed_ranks += 1
                    result.recovery_overhead_s += heal_s
                    iteration_started.pop(completed, None)
                    continue
                # An async save still draining at crash time is lost:
                # rewind to the newest *durably committed* checkpoint,
                # not the newest issued one.
                if writer is not None:
                    rewind = writer.committed_iteration(crash_time) or 0
                else:
                    rewind = last_checkpoint
                wasted_since = iteration_started.get(rewind)
                if wasted_since is not None:
                    result.recovery_overhead_s += max(
                        0.0, device.now() - wasted_since - detection
                    )
                restore = _restore_cost_s(wrapped, optimizer)
                verify = (
                    _checkpoint_nbytes(wrapped, optimizer)
                    * config.world_size
                    / CHECKPOINT_VERIFY_BANDWIDTH
                )
                if session is not None:
                    with session.scoped("recovery:restore"):
                        device.consume_cpu(verify + restore)
                else:
                    device.consume_cpu(verify + restore)
                result.checkpoint_load_s += restore
                result.checkpoint_verify_s += verify
                result.recovery_overhead_s += verify + restore
                result.recovered_iterations += completed - rewind
                for dropped in range(rewind, completed + 1):
                    iteration_started.pop(dropped, None)
                completed = rewind
                last_checkpoint = rewind
        device.synchronize()
        latency = (device.now() - start_time) / config.iterations
        flops = (device.flops_total - start_flops) / config.iterations
        if writer is not None:
            # Final-commit drain happens after the measured window so
            # steady-state latency reflects the overlapped cost only.
            writer.drain()
            result.checkpoint_saves = writer.saves
            result.checkpoint_save_s = writer.total_save_s
            result.checkpoint_stall_s = writer.total_stall_s

        stats = device.memory_stats()
        groups = _groups_of(wrapped)
        result.iteration_latency = latency
        measured_flops = config.model_flops_per_iteration or flops
        result.tflops_per_gpu = measured_flops / latency / 1e12 if latency else 0.0
        result.qps_per_gpu = config.batch_size / latency if latency else 0.0
        result.peak_allocated_gib = stats["allocated_bytes.all.peak"] / GiB
        result.peak_active_gib = stats["active_bytes.all.peak"] / GiB
        result.peak_reserved_gib = stats["reserved_bytes.all.peak"] / GiB
        result.num_alloc_retries = stats["num_alloc_retries"]
        result.comm_gib = (sum(g.bytes_sent for g in groups) - comm_before) / GiB / config.iterations
        result.cross_host_gib = (
            (sum(g.cross_host_bytes for g in groups) - cross_before) / GiB / config.iterations
        )
        result.collectives = (
            sum(g.collective_count for g in groups) - coll_before
        ) // config.iterations
        if session is not None:
            session.finalize()
            totals = session.totals()
            # Times per iteration (comparable to iteration_latency);
            # hit/miss counts raw over the measured window.
            result.exposed_comm_s = totals["exposed_comm_s"] / config.iterations
            result.overlapped_comm_s = totals["overlapped_comm_s"] / config.iterations
            result.rate_limit_stall_s = (
                totals["rate_limit_stall_s"] / config.iterations
            )
            result.prefetch_hits = totals["prefetch_hits"]
            result.prefetch_misses = totals["prefetch_misses"]
            result.extras["profiler"] = session.summary()
        runtime = _runtime_of(wrapped)
        if runtime is not None and runtime.compiled is not None:
            result.extras["compile"] = runtime.compiled.schedule.summary()
    except OutOfMemoryError:
        result.oom = True
    finally:
        if session is not None:
            session.uninstall(device)
        if injector is not None:
            result.faults_injected = len(injector.injected)
        dist.shutdown()
    return result


def _record_config(result: PerfResult, config: SimConfig) -> None:
    """Fill the configuration columns of a result row (Section 5 sweeps
    and the autotune planner print comparable tables)."""
    from repro.fsdp.wrap import policy_label

    if config.parallelism != "fsdp":
        result.strategy = config.parallelism
        return
    result.strategy = config.sharding_strategy.value
    result.backend = config.backend
    result.sharding_factor = config.sharding_factor or 0
    result.wrap_policy = config.wrap_policy_label or policy_label(
        config.auto_wrap_policy
    )
    result.rate_limit = config.rate_limit_inflight if config.limit_all_gathers else 0
    result.backward_prefetch = config.backward_prefetch.value
    result.forward_prefetch = config.forward_prefetch
    mp = config.mixed_precision
    if mp is not None and mp.param_dtype is not None:
        result.mixed_precision = mp.param_dtype.name


def _groups_of(wrapped: Module) -> list:
    groups = []
    seen: set[int] = set()
    if isinstance(wrapped, DistributedDataParallel):
        candidates = [wrapped.process_group]
    else:
        candidates = []
        for unit in _all_units(wrapped):
            candidates.append(unit.plan.shard_group)
            if unit.plan.replicate_group is not None:
                candidates.append(unit.plan.replicate_group)
    for group in candidates:
        if group is not None and id(group) not in seen:
            seen.add(id(group))
            groups.append(group)
    return groups


class CheckpointStore:
    """In-memory sharded checkpoints for elastic training.

    Each rank saves only its own shards (:func:`sharded_state_dict` /
    :func:`sharded_optim_state_dict` with ``copy=True``), mirroring a
    distributed checkpoint directory.  ``latest`` only reports
    iterations where *every* rank's shard landed, so a crash between two
    ranks' saves can never restore a torn checkpoint.

    Superseded by :class:`repro.checkpoint.DistributedCheckpointStore`
    (integrity-checked, resharding-capable); kept as the minimal
    in-memory flavour for tests and same-layout recovery.
    """

    def __init__(self):
        self._lock = threading.Lock()
        # iteration -> rank -> {"model": ..., "optim": ...}
        self._snapshots: dict[int, dict[int, dict]] = {}
        # iteration -> world size the savers ran at
        self._world_sizes: dict[int, int] = {}

    def save(
        self,
        iteration: int,
        rank: int,
        model_state,
        optim_state,
        *,
        world_size: Optional[int] = None,
    ) -> None:
        with self._lock:
            self._snapshots.setdefault(iteration, {})[rank] = {
                "model": model_state,
                "optim": optim_state,
            }
            if world_size is not None:
                self._world_sizes[iteration] = world_size

    def latest(self, world_size: Optional[int] = None) -> Optional[int]:
        """Latest iteration for which every saver's shard exists.

        Completeness is judged against the world size recorded *at save
        time*: a world that shrank after a partial save can never see
        the torn iteration reported complete just because fewer shards
        now suffice.  The ``world_size`` argument is only a fallback for
        iterations saved without one (legacy callers).
        """
        with self._lock:
            complete = []
            for iteration, per_rank in self._snapshots.items():
                expected = self._world_sizes.get(iteration, world_size)
                if expected is not None and len(per_rank) >= expected:
                    complete.append(iteration)
        return max(complete) if complete else None

    def load(self, iteration: int, rank: int) -> dict:
        with self._lock:
            return self._snapshots[iteration][rank]

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)


@dataclass
class ElasticResult:
    """Outcome of one :func:`train_elastic` run."""

    #: Global (rank-averaged) loss per iteration, 0..iterations-1.
    #: Entries are ``None`` for iterations this run never executed
    #: (e.g. a resumed run that started past them).
    losses: list = field(default_factory=list)
    restarts: int = 0
    #: Iterations that had to be re-executed after restarts.
    recovered_iterations: int = 0
    faults_injected: int = 0
    injector: Optional[FaultInjector] = None
    #: World size of each incarnation (initial + one entry per restart).
    world_sizes: list = field(default_factory=list)
    #: The checkpoint store the run used (inspectable: quarantined
    #: iterations, storage byte counters, committed manifests).
    store: Optional[object] = None
    #: Recovery mode the run was launched with ("restore" or "heal").
    recovery: str = "restore"
    #: Simulated fault-to-detection latency summed over restarts.
    detection_s: float = 0.0
    #: Simulated seconds reloading + verifying checkpoints on restarts.
    restore_s: float = 0.0
    #: Simulated seconds pulling failed ranks' shards from replicate
    #: peers (``recovery="heal"``).
    heal_s: float = 0.0
    #: Estimated simulated seconds re-executing recovered iterations.
    replay_s: float = 0.0
    #: One entry per healed restart: the tuple of ranks peer-restored.
    healed_ranks: list = field(default_factory=list)
    #: Restarts where healing was requested but had to fall back to a
    #: checkpoint restore (no surviving replica, shrink/grow restart,
    #: or a corrupted-checkpoint failure).
    heal_fallbacks: int = 0
    #: The typed cause of each restart, in order (e.g. a
    #: RankCrashedError, or a CollectiveTimeoutError whose __cause__
    #: chains the rendezvous diagnostics).
    failures: list = field(default_factory=list)

    @property
    def recovery_overhead_s(self) -> float:
        """Total simulated recovery cost: detect + restore/heal + replay."""
        return self.detection_s + self.restore_s + self.heal_s + self.replay_s


def _load_heal_payload(wrapped: Module, opt, payload: dict) -> None:
    """Restore one rank's state from a heal deposit (same layout).

    Deposits are :func:`repro.checkpoint.snapshot_payload` dicts; heal
    incarnations keep the world size and wrap granularity, so the
    same-layout sharded loaders apply directly (no resharding pass).
    """
    from repro.autograd.grad_mode import no_grad
    from repro.fsdp.optim_state import load_sharded_optim_state_dict
    from repro.fsdp.state_dict import _join, _module_fqns, load_sharded_state_dict

    load_sharded_state_dict(wrapped, payload["model"])
    if opt is not None and "optim" in payload:
        load_sharded_optim_state_dict(wrapped, opt, payload["optim"])
    buffers = payload.get("buffers")
    if buffers:
        fqns = _module_fqns(wrapped)
        with no_grad():
            for module in wrapped.modules():
                if id(module) not in fqns:
                    continue
                for name, buffer in module._buffers.items():
                    if buffer is None:
                        continue
                    value = buffers.get(_join(fqns[id(module)], name))
                    if value is not None:
                        buffer.copy_(value)


def train_elastic(
    *,
    build_model: Callable[[], Module],
    make_loss: Callable[[Module, int, int], "Tensor"],
    world_size: int,
    iterations: int,
    faults: Optional[FaultSchedule] = None,
    fault_injector: Optional[FaultInjector] = None,
    wrap: Optional[Callable[[Module], Module]] = None,
    optimizer: str = "sgd",
    lr: float = 1e-2,
    checkpoint_every: int = 1,
    max_restarts: int = 4,
    collective_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT,
    topology: Optional[ClusterTopology] = None,
    store: Optional[object] = None,
    restart_world_size: Optional[Callable[[int, int], int]] = None,
    recovery: str = "restore",
    coordinated_abort=True,
    desync_check: bool = False,
) -> ElasticResult:
    """Run a real-data threaded training loop with elastic recovery.

    The torchelastic-style control flow: ``dist.spawn`` runs the world;
    when any rank dies (crash fault, collective timeout, exhausted
    retries, corrupted checkpoint) the whole world is torn down and
    respawned, each rank restoring from the latest *verified-good*
    checkpoint in a :class:`repro.checkpoint.DistributedCheckpointStore`
    (two-phase committed, CRC-checked; damaged checkpoints are
    quarantined and the scan falls back to an older good one).  The one
    :class:`FaultInjector` is shared across restarts so one-shot faults
    fire exactly once.

    Because restores go through the resharding loader
    (:func:`repro.checkpoint.load_resharded`), a respawned world may use
    a *different* world size: pass ``restart_world_size(restarts,
    current_world) -> new_world`` to shrink (lost host) or grow
    (replacement arrived) on each restart.  ``store`` may be supplied to
    resume from an earlier run's checkpoints — e.g. a control run at
    world size M continuing a crashed N-rank run.

    ``make_loss(model, rank, iteration)`` must be a deterministic
    function of its arguments for post-recovery losses to match an
    uninterrupted run (property-tested in
    ``tests/test_elastic_recovery.py``).

    ``recovery="heal"`` enables checkpoint-free peer healing: every
    rank deposits its (hybrid-replicated) shards into an in-memory
    :class:`repro.resilience.HealContext` at each iteration boundary —
    free, the replicate-group peers already hold those bytes — and on a
    failure the controller plans a targeted restore where survivors
    keep their live state and each failed rank adopts a surviving
    replica peer's deposit at link bandwidth.  When no replica of a
    failed rank survives (or the restart resizes the world, or the
    failure is a corrupted checkpoint) the restart falls back to the
    checkpoint store and ``heal_fallbacks`` is incremented.
    """
    from repro import checkpoint as ckpt
    from repro.autograd.grad_mode import no_grad

    injector = fault_injector
    if injector is None and faults is not None:
        injector = FaultInjector(faults)
    if store is None:
        store = ckpt.DistributedCheckpointStore(injector=injector)
    elif injector is not None and store.storage.injector is None:
        store.storage.injector = injector
    heal_ctx = HealContext() if recovery == "heal" else None
    # Cross-incarnation control state: the heal plan computed by the
    # controller for the next spawn, and a lock for result accounting
    # written from rank threads.
    control: dict = {"heal_plan": None}
    acct_lock = threading.Lock()
    iteration_times: list[float] = []
    # Template weights so every (re)spawned incarnation starts from the
    # same initialization regardless of ambient RNG state.
    template = build_model()
    template_arrays = [p.detach().numpy().copy() for p in template.parameters()]

    def worker(rank: int):
        device = dist.get_device()
        model = build_model()
        with no_grad():
            for param, src in zip(model.parameters(), template_arrays):
                param._np[...] = src
        wrapped = wrap(model) if wrap is not None else FullyShardedDataParallel(model)
        params = list(wrapped.parameters())
        opt = Adam(params, lr=lr) if optimizer == "adam" else SGD(params, lr=lr)
        group = dist.default_group()
        world = dist.get_world_size()

        def save_checkpoint(iteration: int) -> None:
            blob = ckpt.serialize_state(ckpt.snapshot_payload(wrapped, opt, copy=True))
            store.save_shard(
                iteration=iteration,
                rank=rank,
                world_size=world,
                blob=blob,
                units=ckpt.unit_layouts(wrapped),
            )

        def deposit(tag: int) -> None:
            # Heal deposits are free in simulated time: under hybrid
            # sharding the replicate-group peers already hold these
            # bytes, the context only *indexes* them for the planner.
            if heal_ctx is not None:
                heal_ctx.deposit(
                    rank, tag, ckpt.snapshot_payload(wrapped, opt, copy=True)
                )

        plan = control["heal_plan"]
        if plan is not None:
            # Peer heal: survivors resume from their own (live) state;
            # each failed rank's replacement adopts a surviving replica
            # peer's deposit, paying the shard transfer at link speed.
            start = plan.tag
            donor = plan.sources.get(rank, rank)
            _load_heal_payload(wrapped, opt, heal_ctx.deposit_for(donor).payload)
            if rank in plan.sources:
                transfer_s = plan.transfer_nbytes(rank) / PEER_HEAL_BANDWIDTH
                device.consume_cpu(transfer_s)
                device.emit_mark("heal:peer-restore")
                with acct_lock:
                    result.heal_s += transfer_s
        else:
            start = store.latest()
            if start is None:
                start = 0
                save_checkpoint(0)
            else:
                manifest, payloads = store.read_all(start)
                ckpt.load_resharded(wrapped, opt, manifest=manifest, payloads=payloads)
                nbytes = payload_nbytes(
                    ckpt.snapshot_payload(wrapped, opt, copy=False)
                )
                restore_s = (
                    nbytes / CHECKPOINT_RESTORE_BANDWIDTH
                    + nbytes * world / CHECKPOINT_VERIFY_BANDWIDTH
                )
                device.consume_cpu(restore_s)
                if rank == 0:
                    with acct_lock:
                        result.restore_s += restore_s
        deposit(start)
        for iteration in range(start, iterations):
            iter_begin = device.now()
            if injector is not None:
                injector.begin_iteration(rank, iteration)
            loss = make_loss(wrapped, rank, iteration)
            loss.backward()
            opt.step()
            opt.zero_grad()
            # Record the global loss as soon as it exists: iterations
            # completed before a later failure keep their entries (every
            # rank writes the same reduced value, so the race is benign;
            # re-executed iterations overwrite with identical numbers).
            all_losses[iteration] = group.all_reduce_scalar(loss.item(), ReduceOp.AVG)
            done = iteration + 1
            if checkpoint_every and done % checkpoint_every == 0:
                save_checkpoint(done)
            deposit(done)
            if rank == 0:
                with acct_lock:
                    iteration_times.append(device.now() - iter_begin)

    result = ElasticResult(injector=injector, store=store, recovery=recovery)
    result.world_sizes.append(world_size)
    all_losses: dict[int, float] = {}
    while True:
        try:
            dist.spawn(
                worker,
                world_size,
                topology=topology,
                fault_injector=injector,
                collective_timeout=collective_timeout,
                coordinated_abort=coordinated_abort,
                desync_check=desync_check,
            )
        except DistributedError as exc:
            cause = exc.__cause__
            recoverable = isinstance(cause, RECOVERABLE_ERRORS)
            if not recoverable or result.restarts >= max_restarts:
                raise
            result.restarts += 1
            result.failures.append(cause)
            result.detection_s += _detection_latency(cause)
            plan = None
            if heal_ctx is not None:
                failed = tuple(getattr(exc, "failed_ranks", ()) or ())
                # Whatever the failed ranks held is gone; survivors'
                # deposits stay live for planning.
                heal_ctx.invalidate(failed)
                if (
                    failed
                    and restart_world_size is None
                    and not isinstance(cause, CheckpointCorruptionError)
                ):
                    plan = heal_ctx.plan(failed, world_size)
                if plan is None:
                    # No surviving replica (or a storage failure): fall
                    # back to the checkpoint store, and drop deposits
                    # that would now be *ahead* of the restored state.
                    result.heal_fallbacks += 1
                    heal_ctx.clear()
                else:
                    result.healed_ranks.append(failed)
            control["heal_plan"] = plan
            if injector is not None:
                injector.advance_generation()
                furthest = max(
                    injector.iteration_of(rank) for rank in range(world_size)
                )
                rewind = plan.tag if plan is not None else (store.latest() or 0)
                result.recovered_iterations += max(0, furthest - rewind)
            if restart_world_size is not None:
                world_size = max(1, int(restart_world_size(result.restarts, world_size)))
            result.world_sizes.append(world_size)
            continue
        break
    result.losses = [all_losses.get(i) for i in range(iterations)]
    if iteration_times and result.recovered_iterations:
        result.replay_s = result.recovered_iterations * (
            sum(iteration_times) / len(iteration_times)
        )
    if injector is not None:
        result.faults_injected = len(injector.injected)
    return result


def sweep(configs: list[SimConfig]) -> list[PerfResult]:
    """Run a list of configurations, printing each row as it lands."""
    results = []
    for config in configs:
        result = simulate_training(config)
        print(result.row())
        results.append(result)
    return results
