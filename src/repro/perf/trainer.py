"""Training-loop simulation driver.

Runs paper-scale models in *abstract* mode (shapes, kernel costs and
allocator traffic flow; no real data) on the symmetric single-rank
backend, producing the metrics of Section 5: TFLOPS per GPU, latency
per batch, QPS, peak allocated/active/reserved memory and the
cudaMalloc-retry count.

The same driver runs DDP (model fully replicated — expected to OOM for
large models, Figure 6(a)) and FSDP in any sharding configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro import distributed as dist
from repro.cuda.device import Device
from repro.ddp import DistributedDataParallel
from repro.errors import OutOfMemoryError
from repro.fsdp import (
    BackwardPrefetch,
    FullyShardedDataParallel,
    MixedPrecision,
    ShardingStrategy,
)
from repro.fsdp.deferred_init import deferred_init
from repro.hw.specs import ClusterTopology
from repro.nn.module import Module
from repro.optim import Adam, SGD
from repro.perf.metrics import GiB, PerfResult

__all__ = ["SimConfig", "simulate_training"]

LossFn = Callable[[Module, Device], "object"]


@dataclass
class SimConfig:
    """One simulated training configuration."""

    name: str
    build_model: Callable[[], Module]
    make_loss: LossFn
    batch_size: int
    world_size: int
    parallelism: str = "fsdp"  # "fsdp" | "ddp"
    sharding_strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD
    sharding_factor: Optional[int] = None
    auto_wrap_policy: Optional[Callable[[Module], bool]] = None
    mixed_precision: Optional[MixedPrecision] = None
    backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE
    forward_prefetch: bool = False
    limit_all_gathers: bool = True
    rate_limit_inflight: int = 2
    reshard_after_forward: Optional[bool] = None
    optimizer: str = "adam"
    iterations: int = 2
    warmup: int = 1
    topology: Optional[ClusterTopology] = None
    capacity: Optional[int] = None
    model_flops_per_iteration: Optional[float] = None
    #: Given the built model, return modules FSDP must not shard
    #: (e.g. DHEN's model-parallel sparse tables).
    ignored_modules_of: Optional[Callable[[Module], list]] = None
    #: Keep parameter shards in host memory (CPUOffload).
    cpu_offload: bool = False
    #: Gradient-accumulation microbatches per optimizer step (1 = off).
    accumulate_steps: int = 1
    #: Accumulate under no_sync (skip communication; unsharded grads).
    accumulate_no_sync: bool = False


def _wrap_model(config: SimConfig, device: Device) -> Module:
    if config.parallelism == "ddp":
        # DDP fully materializes the replica on the device: this is
        # where >2.28B models hit out-of-memory (Figure 6(a)).
        from repro.fsdp.deferred_init import materialize_module

        model = deferred_init(config.build_model)
        materialize_module(model, device)
        return DistributedDataParallel(model, broadcast_parameters=False)
    model = deferred_init(config.build_model)
    ignored = config.ignored_modules_of(model) if config.ignored_modules_of else None
    from repro.fsdp import CPUOffload

    wrapped = FullyShardedDataParallel(
        model,
        ignored_modules=ignored,
        cpu_offload=CPUOffload(offload_params=True) if config.cpu_offload else None,
        sharding_strategy=config.sharding_strategy,
        sharding_factor=config.sharding_factor,
        auto_wrap_policy=config.auto_wrap_policy,
        mixed_precision=config.mixed_precision,
        backward_prefetch=config.backward_prefetch,
        forward_prefetch=config.forward_prefetch,
        limit_all_gathers=config.limit_all_gathers,
        rate_limit_inflight=config.rate_limit_inflight,
        device=device,
    )
    if config.reshard_after_forward is not None:
        for unit in _all_units(wrapped):
            unit.reshard_after_forward = config.reshard_after_forward
    return wrapped


def _all_units(wrapped: Module):
    from repro.fsdp.api import _units_under

    return _units_under(wrapped)


def simulate_training(config: SimConfig) -> PerfResult:
    """Simulate a few training iterations; returns steady-state metrics."""
    dist.shutdown()
    ctx = dist.init_single_process(
        config.world_size,
        topology=config.topology,
        materialize=False,
        capacity=config.capacity,
    )
    device = ctx.device
    result = PerfResult(
        name=config.name, world_size=config.world_size, batch_size=config.batch_size
    )
    try:
        wrapped = _wrap_model(config, device)
        params = list(wrapped.parameters())
        if config.ignored_modules_of is not None and config.parallelism == "fsdp":
            # Ignored (model-parallel sparse) parameters use their own
            # streaming optimizer in production whose cost scales with
            # touched rows, not table size; exclude them from the dense
            # optimizer here.
            from repro.fsdp.flat_param import FlatParameter

            params = [p for p in params if isinstance(p, FlatParameter)]
        if config.optimizer == "adam":
            optimizer = Adam(params, lr=1e-4)
        else:
            optimizer = SGD(params, lr=1e-2)

        latency = 0.0
        flops = 0.0
        comm_before = cross_before = coll_before = 0
        for iteration in range(config.warmup + config.iterations):
            if iteration == config.warmup:
                device.reset_peak_memory_stats()
                groups = _groups_of(wrapped)
                comm_before = sum(g.bytes_sent for g in groups)
                cross_before = sum(g.cross_host_bytes for g in groups)
                coll_before = sum(g.collective_count for g in groups)
                device.synchronize()
                start_time = device.now()
                start_flops = device.flops_total
            if config.accumulate_steps > 1 and config.parallelism == "fsdp":
                # Gradient accumulation (Section 3.3.4): the first
                # accumulate_steps-1 microbatches either still reduce
                # (with communication) or run under no_sync (without).
                import contextlib

                for micro in range(config.accumulate_steps - 1):
                    scope = (
                        wrapped.no_sync()
                        if config.accumulate_no_sync
                        else contextlib.nullcontext()
                    )
                    with scope:
                        config.make_loss(wrapped, device).backward()
            loss = config.make_loss(wrapped, device)
            loss.backward()
            optimizer.step()
            optimizer.zero_grad()
        device.synchronize()
        latency = (device.now() - start_time) / config.iterations
        flops = (device.flops_total - start_flops) / config.iterations

        stats = device.memory_stats()
        groups = _groups_of(wrapped)
        result.iteration_latency = latency
        measured_flops = config.model_flops_per_iteration or flops
        result.tflops_per_gpu = measured_flops / latency / 1e12 if latency else 0.0
        result.qps_per_gpu = config.batch_size / latency if latency else 0.0
        result.peak_allocated_gib = stats["allocated_bytes.all.peak"] / GiB
        result.peak_active_gib = stats["active_bytes.all.peak"] / GiB
        result.peak_reserved_gib = stats["reserved_bytes.all.peak"] / GiB
        result.num_alloc_retries = stats["num_alloc_retries"]
        result.comm_gib = (sum(g.bytes_sent for g in groups) - comm_before) / GiB / config.iterations
        result.cross_host_gib = (
            (sum(g.cross_host_bytes for g in groups) - cross_before) / GiB / config.iterations
        )
        result.collectives = (
            sum(g.collective_count for g in groups) - coll_before
        ) // config.iterations
    except OutOfMemoryError:
        result.oom = True
    finally:
        dist.shutdown()
    return result


def _groups_of(wrapped: Module) -> list:
    groups = []
    seen: set[int] = set()
    if isinstance(wrapped, DistributedDataParallel):
        candidates = [wrapped.process_group]
    else:
        candidates = []
        for unit in _all_units(wrapped):
            candidates.append(unit.plan.shard_group)
            if unit.plan.replicate_group is not None:
                candidates.append(unit.plan.replicate_group)
    for group in candidates:
        if group is not None and id(group) not in seen:
            seen.add(id(group))
            groups.append(group)
    return groups


def sweep(configs: list[SimConfig]) -> list[PerfResult]:
    """Run a list of configurations, printing each row as it lands."""
    results = []
    for config in configs:
        result = simulate_training(config)
        print(result.row())
        results.append(result)
    return results
