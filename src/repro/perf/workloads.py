"""Workload factories: abstract-mode inputs and losses for each model.

Inputs are shape-only tensors (no data) — the simulator only needs
their shapes, dtypes and the kernel/communication costs they induce.
"""

from __future__ import annotations

from typing import Callable

from repro import dtypes
from repro.cuda.device import Device
from repro.models import (
    DHEN,
    DeepViT,
    DeepViTConfig,
    DhenConfig,
    GptConfig,
    MinGPT,
    RegNet,
    RegNetConfig,
    T5Config,
    T5Model,
)
from repro.nn import functional as F
from repro.nn.module import Module
from repro.tensor import empty

__all__ = [
    "gpt_builder",
    "gpt_loss_fn",
    "t5_builder",
    "t5_loss_fn",
    "dhen_builder",
    "dhen_loss_fn",
    "dhen_infer_fn",
    "dhen_ignored_modules",
    "regnet_builder",
    "regnet_loss_fn",
    "deepvit_builder",
    "deepvit_loss_fn",
    "transformer_flops",
]


def transformer_flops(params: float, tokens: float, checkpointing: bool) -> float:
    """Hardware FLOPs per iteration: 6·N·T, plus 2·N·T of recompute."""
    factor = 8.0 if checkpointing else 6.0
    return factor * params * tokens


# ----------------------------------------------------------------------
# minGPT
# ----------------------------------------------------------------------
def gpt_builder(config: GptConfig) -> Callable[[], Module]:
    return lambda: MinGPT(config)


def gpt_loss_fn(config: GptConfig, batch: int, seq: int):
    def make_loss(model: Module, device: Device):
        ids = empty(batch, seq, dtype=dtypes.int64, device=device)
        labels = empty(batch, seq, dtype=dtypes.int64, device=device)
        logits = model(ids)
        return F.cross_entropy(logits, labels)

    return make_loss


# ----------------------------------------------------------------------
# T5
# ----------------------------------------------------------------------
def t5_builder(config: T5Config) -> Callable[[], Module]:
    return lambda: T5Model(config)


def t5_loss_fn(config: T5Config, batch: int, seq: int):
    def make_loss(model: Module, device: Device):
        src = empty(batch, seq, dtype=dtypes.int64, device=device)
        tgt = empty(batch, seq, dtype=dtypes.int64, device=device)
        labels = empty(batch, seq, dtype=dtypes.int64, device=device)
        logits = model(src, tgt)
        return F.cross_entropy(logits, labels)

    return make_loss


# ----------------------------------------------------------------------
# DHEN
# ----------------------------------------------------------------------
# Per-GPU resident sparse rows: models the managed embedding cache that
# production recommendation systems use (the raw 768B-parameter tables
# exceed any single host; see DESIGN.md substitutions).
DHEN_LOCAL_ROWS = 16_000_000


def dhen_builder(config: DhenConfig) -> Callable[[], Module]:
    def build() -> Module:
        from repro import distributed as dist

        group = dist.default_group() if dist.is_initialized() else None
        world = group.world_size if group is not None else 1
        rows = min(DHEN_LOCAL_ROWS, max(1, config.sparse_rows_total // world))
        return DHEN(config, sparse_group=group, local_sparse_rows=rows)

    return build


def dhen_ignored_modules(model: Module) -> list:
    return [model.sparse_table]


def dhen_loss_fn(config: DhenConfig, batch: int):
    def make_loss(model: Module, device: Device):
        sparse_ids = empty(batch, config.num_features, dtype=dtypes.int64, device=device)
        dense = empty(batch, config.num_dense_features, device=device)
        labels = empty(batch, device=device)
        logits = model(sparse_ids, dense)
        probs = F.sigmoid(logits)
        return F.mse_loss(probs, labels)

    return make_loss


def dhen_infer_fn(config: DhenConfig):
    """Inference-batch runner for serving replicas (repro.serve).

    Returns ``make_batch(model, device, batch_size)``: one eval-mode
    CTR forward with shape-only inputs of the requested batch size.
    The caller is responsible for ``no_grad``/``model.eval()``; this
    runner only builds inputs and invokes the wrapped model.
    """

    def make_batch(model: Module, device: Device, batch: int):
        sparse_ids = empty(batch, config.num_features, dtype=dtypes.int64, device=device)
        dense = empty(batch, config.num_dense_features, device=device)
        return F.sigmoid(model(sparse_ids, dense))

    return make_batch


# ----------------------------------------------------------------------
# Vision models
# ----------------------------------------------------------------------
def regnet_builder(config: RegNetConfig) -> Callable[[], Module]:
    return lambda: RegNet(config)


def regnet_loss_fn(config: RegNetConfig, batch: int):
    def make_loss(model: Module, device: Device):
        images = empty(batch, config.in_channels, config.image_size, config.image_size, device=device)
        labels = empty(batch, dtype=dtypes.int64, device=device)
        return F.cross_entropy(model(images), labels)

    return make_loss


def deepvit_builder(config: DeepViTConfig) -> Callable[[], Module]:
    return lambda: DeepViT(config)


def deepvit_loss_fn(config: DeepViTConfig, batch: int):
    def make_loss(model: Module, device: Device):
        images = empty(batch, config.in_channels, config.image_size, config.image_size, device=device)
        labels = empty(batch, dtype=dtypes.int64, device=device)
        return F.cross_entropy(model(images), labels)

    return make_loss
