"""Gradient-mode context managers (``no_grad`` / ``enable_grad``).

These sit on the hot path of every op dispatch (``Function.apply``
wraps each forward in ``no_grad``), so the context managers are plain
``__enter__``/``__exit__`` classes rather than ``contextlib`` generators
— entering one is a couple of attribute writes, no generator frame.
"""

from __future__ import annotations

import threading

__all__ = ["is_grad_enabled", "no_grad", "enable_grad", "set_grad_enabled"]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Whether ops record autograd graphs on this thread."""
    return getattr(_state, "enabled", True)


class set_grad_enabled:
    """Context manager forcing grad mode to ``enabled``.

    Re-entrant: each instance restores the mode that was active when it
    was entered, so instances may be nested or reused sequentially.
    """

    __slots__ = ("enabled", "_previous")

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self._previous = True

    def __enter__(self) -> None:
        self._previous = getattr(_state, "enabled", True)
        _state.enabled = self.enabled

    def __exit__(self, *exc_info) -> None:
        _state.enabled = self._previous


def no_grad() -> set_grad_enabled:
    """Disable autograd recording inside the context."""
    return set_grad_enabled(False)


def enable_grad() -> set_grad_enabled:
    """Re-enable autograd recording inside the context."""
    return set_grad_enabled(True)
