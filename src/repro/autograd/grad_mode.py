"""Gradient-mode context managers (``no_grad`` / ``enable_grad``)."""

from __future__ import annotations

import contextlib
import threading

__all__ = ["is_grad_enabled", "no_grad", "enable_grad", "set_grad_enabled"]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Whether ops record autograd graphs on this thread."""
    return getattr(_state, "enabled", True)


def _set(enabled: bool) -> bool:
    previous = is_grad_enabled()
    _state.enabled = enabled
    return previous


@contextlib.contextmanager
def set_grad_enabled(enabled: bool):
    """Context manager forcing grad mode to ``enabled``."""
    previous = _set(enabled)
    try:
        yield
    finally:
        _set(previous)


def no_grad():
    """Disable autograd recording inside the context."""
    return set_grad_enabled(False)


def enable_grad():
    """Re-enable autograd recording inside the context."""
    return set_grad_enabled(True)
