"""Reverse-mode automatic differentiation."""

from repro.autograd.engine import grad, queue_callback, run_backward
from repro.autograd.function import (
    AccumulateGrad,
    Context,
    Edge,
    Function,
    Node,
    RemovableHandle,
)
from repro.autograd.grad_mode import (
    enable_grad,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)

__all__ = [
    "run_backward",
    "grad",
    "queue_callback",
    "Function",
    "Context",
    "Node",
    "Edge",
    "AccumulateGrad",
    "RemovableHandle",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
]
