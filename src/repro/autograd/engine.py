"""Reverse-mode execution engine.

Implements the dependency-counted ready-queue evaluation used by
PyTorch's autograd engine, including the extension points FSDP needs
(Section 4.3):

- tensor hooks fire when the (fully accumulated) gradient of a tensor
  is computed — FSDP anchors pre-backward unsharding there;
- ``AccumulateGrad`` post hooks fire when a leaf's gradient is
  finalized — FSDP launches ReduceScatter there;
- :func:`queue_callback` registers work to run at the end of the
  current backward (``GraphTask`` exit) — FSDP waits for pending
  reductions there so the optimizer never consumes gradients early.

Saved activations are released as soon as each node executes (unless
``retain_graph``), so backward frees simulated memory progressively
like the real engine.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.autograd.function import AccumulateGrad, Edge, Node
from repro.autograd.grad_mode import no_grad
from repro.cuda import sanitizer

if TYPE_CHECKING:  # pragma: no cover
    from repro.tensor import Tensor

__all__ = ["run_backward", "queue_callback", "grad"]

_state = threading.local()


def queue_callback(callback: Callable[[], None]) -> None:
    """Run ``callback`` when the current backward pass finishes.

    Outside a backward pass the callback runs immediately.
    """
    callbacks = getattr(_state, "callbacks", None)
    if callbacks is None:
        callback()
    else:
        callbacks.append(callback)


def _count_dependencies(root_nodes: list) -> dict:
    deps: dict[object, int] = {}
    seen: set[int] = set()
    stack = []
    for node in root_nodes:
        if id(node) not in seen:
            seen.add(id(node))
            stack.append(node)
    while stack:
        node = stack.pop()
        for edge in node.next_edges:
            if edge is None:
                continue
            deps[edge.node] = deps.get(edge.node, 0) + 1
            if id(edge.node) not in seen:
                seen.add(id(edge.node))
                stack.append(edge.node)
    return deps


def run_backward(
    tensors: list["Tensor"],
    grad_tensors: list[Optional["Tensor"]],
    retain_graph: bool = False,
) -> None:
    """Run backward from ``tensors`` seeded with ``grad_tensors``."""
    from repro.tensor import Tensor  # local to avoid import cycle

    if len(tensors) != len(grad_tensors):
        raise ValueError("tensors and grad_tensors must have equal length")

    roots: list[tuple[Edge, Tensor]] = []
    for tensor, seed in zip(tensors, grad_tensors):
        if not tensor.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if seed is None:
            if tensor.numel != 1:
                raise RuntimeError("grad can be implicitly created only for scalar outputs")
            from repro.tensor import ones_like

            seed = ones_like(tensor)
        edge = tensor._grad_edge()
        if edge is not None:
            roots.append((edge, seed))

    nested = getattr(_state, "callbacks", None) is not None
    if not nested:
        _state.callbacks = []
    try:
        _execute(roots, retain_graph)
    finally:
        if not nested:
            callbacks, _state.callbacks = _state.callbacks, None
            for callback in callbacks:
                callback()


def _execute(roots: list[tuple[Edge, "Tensor"]], retain_graph: bool) -> None:
    deps = _count_dependencies([edge.node for edge, _ in roots])
    buffers: dict[object, list] = {}
    ready: deque = deque()
    pending_ready: set[int] = set()

    def deliver(edge: Edge, grad) -> None:
        node = edge.node
        buffer = buffers.get(node)
        if buffer is None:
            buffer = [None] * node.num_outputs
            buffers[node] = buffer
        if grad is not None:
            slot = buffer[edge.input_nr]
            if slot is None:
                buffer[edge.input_nr] = grad
            else:
                with no_grad():
                    buffer[edge.input_nr] = slot + grad

    def decrement(node) -> None:
        remaining = deps.get(node, 0) - 1
        deps[node] = remaining
        if remaining <= 0 and id(node) not in pending_ready:
            pending_ready.add(id(node))
            ready.append(node)

    for edge, seed in roots:
        deliver(edge, seed)
        if deps.get(edge.node, 0) == 0 and id(edge.node) not in pending_ready:
            pending_ready.add(id(edge.node))
            ready.append(edge.node)

    while ready:
        node = ready.popleft()
        buffer = buffers.pop(node, [None] * node.num_outputs)

        if isinstance(node, AccumulateGrad):
            grad = buffer[0]
            if grad is not None:
                variable = node.variable
                if variable is not None:
                    for hook in list(variable._hooks.values()):
                        replacement = hook(grad)
                        if replacement is not None:
                            grad = replacement
                    node.accumulate(grad)
            continue

        if all(g is None for g in buffer):
            # No gradient flowed into this node; propagate the "no grad"
            # signal without executing backward.
            for edge in node.next_edges:
                if edge is not None:
                    decrement(edge.node)
            if not retain_graph:
                node.ctx.release()
            continue

        for i, hooks in enumerate(node.output_hooks):
            grad = buffer[i]
            if grad is None or not hooks:
                continue
            for hook in list(hooks.values()):
                replacement = hook(grad)
                if replacement is not None:
                    grad = replacement
            buffer[i] = grad

        if sanitizer.is_enabled():
            # Attribute kernels launched by this node to its backward,
            # so violations name the node instead of a bare "kernel".
            with sanitizer.launch_site(f"backward:{node.name}"):
                grads = node.run_backward(buffer)
        else:
            grads = node.run_backward(buffer)
        if len(grads) != len(node.next_edges):
            raise RuntimeError(
                f"{node.name}.backward returned {len(grads)} gradients for "
                f"{len(node.next_edges)} inputs"
            )
        for grad, edge in zip(grads, node.next_edges):
            if edge is None:
                continue
            deliver(edge, grad)
            decrement(edge.node)
        if not retain_graph:
            node.ctx.release()


def grad(
    outputs: list["Tensor"],
    inputs: list["Tensor"],
    grad_outputs: Optional[list[Optional["Tensor"]]] = None,
) -> list[Optional["Tensor"]]:
    """Compute gradients of ``outputs`` w.r.t. ``inputs``.

    A convenience wrapper over :func:`run_backward` that stashes and
    restores ``.grad`` on the inputs (our engine always accumulates
    into leaves).
    """
    stashed = [t.grad for t in inputs]
    for t in inputs:
        t.grad = None
    try:
        seeds = grad_outputs if grad_outputs is not None else [None] * len(outputs)
        run_backward(list(outputs), list(seeds), retain_graph=False)
        return [t.grad for t in inputs]
    finally:
        for t, old in zip(inputs, stashed):
            t.grad = old
