"""Autograd ``Function`` base class and graph nodes.

Mirrors the relevant parts of ``torch.autograd``:

- :class:`Function` — define ``forward(ctx, ...)`` / ``backward(ctx, ...)``
  and call ``apply``;
- :class:`Node` — a recorded backward node with edges to the producers
  of its inputs;
- :class:`AccumulateGrad` — the sink node of a leaf tensor, supporting
  the post-accumulate-grad hooks FSDP uses to launch ReduceScatter the
  moment a FlatParameter's gradient is finalized (Section 4.3).

Tensor hooks (``Tensor.register_hook``) are captured per graph edge by
*list identity*, so hooks registered after the forward pass (as FSDP
does on unit outputs) still fire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.autograd.grad_mode import _state, is_grad_enabled, no_grad

if TYPE_CHECKING:  # pragma: no cover
    from repro.tensor import Tensor

__all__ = ["Context", "Function", "Node", "AccumulateGrad", "Edge", "RemovableHandle"]

# Lazily bound Tensor class (repro.tensor imports this module).
_Tensor = None


class RemovableHandle:
    """Deregisters a hook on ``remove()``."""

    _next_id = 0

    def __init__(self, hooks: dict[int, Any]):
        self._hooks = hooks
        self.hook_id = RemovableHandle._next_id
        RemovableHandle._next_id += 1

    def remove(self) -> None:
        self._hooks.pop(self.hook_id, None)


class Context:
    """Per-call storage for ``Function.forward`` → ``backward``."""

    def __init__(self):
        self.saved_tensors: tuple = ()
        self._released = False

    def save_for_backward(self, *tensors) -> None:
        self.saved_tensors = tensors

    def release(self) -> None:
        """Drop saved tensors so activation storage can be freed."""
        self.saved_tensors = ()
        self._released = True


class Edge:
    """Backward-graph edge: deliver grad to ``node`` input slot ``input_nr``."""

    __slots__ = ("node", "input_nr")

    def __init__(self, node: "Node", input_nr: int):
        self.node = node
        self.input_nr = input_nr


class Node:
    """A backward node recorded for one ``Function.apply`` call."""

    __slots__ = (
        "function",
        "ctx",
        "next_edges",
        "num_outputs",
        "output_hooks",
        "name",
        "metadata",
        "__weakref__",
    )

    def __init__(self, function: type["Function"], ctx: Context, next_edges: list[Optional[Edge]]):
        self.function = function
        self.ctx = ctx
        self.next_edges = next_edges
        self.num_outputs = 1
        # One hook dict per forward output, shared with the output
        # tensor so later ``register_hook`` calls are visible here.
        self.output_hooks: list[dict[int, Any]] = []
        self.name = function.__name__
        self.metadata: dict[str, Any] = {}

    def run_backward(self, grad_outputs: list[Optional["Tensor"]]) -> tuple:
        """Invoke the function's backward under ``no_grad``."""
        with no_grad():
            if self.num_outputs == 1:
                grads = self.function.backward(self.ctx, grad_outputs[0])
            else:
                grads = self.function.backward(self.ctx, *grad_outputs)
        if not isinstance(grads, tuple):
            grads = (grads,)
        return grads

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name}>"


class AccumulateGrad:
    """Sink node accumulating into a leaf tensor's ``.grad``."""

    __slots__ = ("variable_ref", "post_hooks", "next_edges", "num_outputs", "name", "__weakref__")

    def __init__(self, variable: "Tensor"):
        import weakref

        self.variable_ref = weakref.ref(variable)
        self.post_hooks: dict[int, Any] = {}
        self.next_edges: list[Optional[Edge]] = []
        self.num_outputs = 1
        self.name = "AccumulateGrad"

    @property
    def variable(self) -> Optional["Tensor"]:
        return self.variable_ref()

    def accumulate(self, grad: "Tensor") -> None:
        variable = self.variable
        if variable is None:
            return
        with no_grad():
            if variable.grad is None:
                variable.grad = grad
            else:
                variable.grad = variable.grad + grad
        for hook in list(self.post_hooks.values()):
            hook(variable)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Node AccumulateGrad>"


class Function:
    """Base class for differentiable ops (``torch.autograd.Function``)."""

    @staticmethod
    def forward(ctx: Context, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, *grad_outputs):  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs):
        global _Tensor
        Tensor = _Tensor
        if Tensor is None:
            from repro.tensor import Tensor

            _Tensor = Tensor

        any_grad = False
        flags = []
        for a in args:
            flag = isinstance(a, Tensor) and a.requires_grad and a.dtype.is_floating
            flags.append(flag)
            if flag:
                any_grad = True
        needs_input_grad = tuple(flags)
        needs_grad = any_grad and getattr(_state, "enabled", True)

        ctx = Context()
        ctx.needs_input_grad = needs_input_grad
        # Inlined no_grad(): apply() runs once per op dispatch, and the
        # context-manager protocol is measurable there.
        previous = getattr(_state, "enabled", True)
        _state.enabled = False
        try:
            outputs = cls.forward(ctx, *args, **kwargs)
        finally:
            _state.enabled = previous
        single = not isinstance(outputs, tuple)
        output_tuple = (outputs,) if single else outputs

        if needs_grad:
            next_edges: list[Optional[Edge]] = [
                args[i]._grad_edge() if flag else None
                for i, flag in enumerate(needs_input_grad)
            ]
            node = Node(cls, ctx, next_edges)
            node.num_outputs = len(output_tuple)
            for i, out in enumerate(output_tuple):
                out.requires_grad = True
                out.grad_fn = node
                out._output_nr = i
                node.output_hooks.append(out._hooks)
        else:
            ctx.release()
        return outputs
