"""Sharded model replicas: measured service latency + fleet-side state.

A *replica* is one sharded inference instance of the model — ``gpus``
simulated GPUs running FSDP (either backend) in eval mode.  Rather than
re-simulating every forward at fleet scale, a :class:`ServiceModel`
measures the replica's batch latency **once** per anchor batch size by
actually running the model through the discrete-event simulator
(``no_grad`` forward: AllGathers, reshards, kernel costs and allocator
traffic all flow; no ReduceScatter is ever issued — locked down by
``tests/test_inference_mode.py``), then interpolates between anchors.
The fleet's event loop consumes those measured latencies, which is what
makes thousand-replica traffic sims affordable (the PR-7 engine speedup
pays off here).

The fleet-side :class:`Replica` is a small state machine — STARTING →
LIVE → DOWN — owning a request queue, a batching policy and an LRU of
resident embedding keys (hot-key skew makes this cache meaningful:
cold keys charge the cross-host lookup penalty, hot keys ride free).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import distributed as dist
from repro.autograd.grad_mode import no_grad
from repro.fsdp.sharding import ShardingStrategy
from repro.hw.specs import ClusterTopology
from repro.serve.batcher import BatchPolicy
from repro.serve.queue import RequestQueue
from repro.serve.traffic import Request

__all__ = ["ReplicaSpec", "ServiceModel", "Replica", "ReplicaState"]


@dataclass(frozen=True)
class ReplicaSpec:
    """Geometry of one serving replica (the unit the fleet scales)."""

    name: str
    #: Deferred model factory (same contract as ``SimConfig``).
    build_model: Callable
    #: ``make_batch(model, device, batch_size)`` runs one inference
    #: forward for a batch of that size (shape-only inputs).
    make_batch: Callable
    #: Simulated GPUs per replica (the sharded instance's world size).
    gpus: int
    backend: str = "flat_param"
    sharding_strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD
    auto_wrap_policy: Optional[Callable] = None
    mixed_precision: Optional[object] = None
    #: Given the built model, modules FSDP must not shard (e.g. DHEN's
    #: model-parallel sparse tables) — forwarded to ``SimConfig``.
    ignored_modules_of: Optional[Callable] = None
    #: Largest batch the scheduler may form.
    max_batch: int = 32
    topology: Optional[ClusterTopology] = None
    #: Added service time per cold (non-resident) embedding key in a
    #: batch — the cross-host sparse-lookup penalty hot-key skew dodges.
    cold_key_penalty_s: float = 0.0
    #: Per-replica resident-key LRU capacity (0 disables the cache and
    #: with it the cold-key penalty).
    key_cache_size: int = 0


def _anchor_sizes(max_batch: int) -> list[int]:
    anchors = []
    size = 1
    while size < max_batch:
        anchors.append(size)
        size *= 2
    anchors.append(max_batch)
    return anchors


class ServiceModel:
    """Measured batch-latency curve for one :class:`ReplicaSpec`.

    ``measure()`` spins up a representative sharded world (symmetric
    backend, abstract tensors), runs eval-mode forwards at anchor batch
    sizes and records the simulated latency of each.  ``latency(b)``
    interpolates linearly between anchors — forward cost is close to
    affine in batch size over a small range, and anchors are dense
    (powers of two), so the error is well under scheduling noise.
    """

    def __init__(self, spec: ReplicaSpec, *, profiler=None):
        self.spec = spec
        self.anchors = _anchor_sizes(spec.max_batch)
        self._latency: dict[int, float] = {}
        #: Total parameter bytes of the replica's model (all shards);
        #: drives checkpoint-restore time during provisioning.
        self.model_bytes = 0
        self._profiler = profiler

    @property
    def measured(self) -> bool:
        return bool(self._latency)

    def measure(self) -> "ServiceModel":
        """Run the anchor forwards in a fresh simulated world."""
        from repro.perf.trainer import SimConfig, _all_units, _wrap_model

        spec = self.spec
        config = SimConfig(
            name=f"serve:{spec.name}",
            build_model=spec.build_model,
            make_loss=lambda model, device: None,  # inference only
            batch_size=spec.max_batch,
            world_size=spec.gpus,
            backend=spec.backend,
            sharding_strategy=spec.sharding_strategy,
            auto_wrap_policy=spec.auto_wrap_policy,
            mixed_precision=spec.mixed_precision,
            ignored_modules_of=spec.ignored_modules_of,
        )
        dist.shutdown()
        ctx = dist.init_single_process(
            spec.gpus, topology=spec.topology, materialize=False
        )
        device = ctx.device
        session = self._profiler
        if session is not None:
            session.install(device)
        try:
            model = _wrap_model(config, device)
            model.eval()
            self.model_bytes = sum(
                unit.handle.sharded_nbytes
                for unit in _all_units(model)
                if unit.handle is not None
            ) * spec.gpus
            with no_grad():
                for batch in self.anchors:
                    # One warmup (allocator reaches steady state, first
                    # AllGathers pay cudaMalloc) + one measured pass.
                    spec.make_batch(model, device, batch)
                    device.synchronize()
                    start = device.now()
                    if session is not None:
                        # Pinned: the FSDP runtime clears unpinned
                        # scopes at its iteration boundary (root
                        # pre-forward), which this span encloses.
                        with session.scoped(
                            f"serve:batch@{spec.name}", pinned=True
                        ):
                            spec.make_batch(model, device, batch)
                            device.synchronize()
                    else:
                        spec.make_batch(model, device, batch)
                        device.synchronize()
                    self._latency[batch] = device.now() - start
        finally:
            if session is not None:
                session.uninstall(device)
            dist.shutdown()
        return self

    def latency(self, batch: int) -> float:
        """Service time for a batch of ``batch`` requests (interpolated)."""
        if not self._latency:
            self.measure()
        spec = self.spec
        if batch < 1:
            raise ValueError("batch must be >= 1")
        batch = min(batch, spec.max_batch)
        anchors = self.anchors
        if batch in self._latency:
            return self._latency[batch]
        for lo, hi in zip(anchors, anchors[1:]):
            if lo < batch < hi:
                frac = (batch - lo) / (hi - lo)
                return self._latency[lo] + frac * (
                    self._latency[hi] - self._latency[lo]
                )
        return self._latency[anchors[-1]]  # pragma: no cover - clamped above

    def throughput(self, batch: Optional[int] = None) -> float:
        """Requests/s of one replica running back-to-back batches."""
        batch = batch or self.spec.max_batch
        return batch / self.latency(batch)


class ReplicaState(enum.Enum):
    STARTING = "starting"
    LIVE = "live"
    DOWN = "down"


@dataclass
class Replica:
    """Fleet-side state of one replica instance."""

    rid: int
    policy: BatchPolicy
    queue: RequestQueue
    key_cache_size: int = 0
    state: ReplicaState = ReplicaState.STARTING
    busy: bool = False
    #: Guards stale scheduled polls: a poll event only fires if the
    #: replica's wake sequence still matches.
    wake_seq: int = 0
    batches_served: int = 0
    requests_served: int = 0
    #: Simulated seconds this replica spent serving batches.
    busy_s: float = 0.0
    live_since: float = 0.0
    _cache: OrderedDict = field(default_factory=OrderedDict)

    def cold_keys(self, batch: list[Request]) -> int:
        """Count cache-missing keys in the batch and warm the LRU."""
        if self.key_cache_size <= 0:
            return 0
        misses = 0
        for request in batch:
            key = request.key
            if key in self._cache:
                self._cache.move_to_end(key)
            else:
                misses += 1
                self._cache[key] = True
                while len(self._cache) > self.key_cache_size:
                    self._cache.popitem(last=False)
        return misses

    def invalidate_cache(self) -> None:
        self._cache.clear()
