"""Seedable request-traffic generation for the serving simulator.

The paper reports QPS for DHEN recommendation inference (Section 5.1);
real recommendation traffic is nothing like a constant stream, so the
generator models the three properties that stress a serving fleet:

- **diurnal load curves** — the arrival rate follows a sinusoid over a
  configurable period (a day compressed into simulated seconds), so
  autoscalers see sustained ramps, not noise;
- **bursts** — short windows multiply the instantaneous rate (a push
  notification, a retried client storm);
- **hot-key skew** — each request carries an embedding-table key drawn
  from a Zipf-weighted hot set with probability ``hot_fraction`` and
  uniformly from the cold key space otherwise, so replica-side
  embedding caches and affinity routing have something to exploit.

Arrivals are an inhomogeneous Poisson process sampled by thinning: gaps
are drawn at the peak rate and accepted with probability
``rate(t)/peak``.  Every draw comes from one ``random.Random(seed)``
made at construction — the stream is a pure function of its config
(property-tested: same seed ⇒ identical stream, bitwise).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Request", "TrafficConfig", "TrafficGenerator"]


@dataclass(frozen=True)
class Request:
    """One inference request in the simulated stream."""

    rid: int
    arrival_s: float
    #: Embedding-table key the request hits hardest (drives replica
    #: cache behaviour and affinity routing).
    key: int
    #: Absolute SLO deadline; requests still queued past it are shed.
    deadline_s: float


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one generated request stream (all fields seed the RNG)."""

    seed: int
    duration_s: float
    #: Mean offered load (requests/s) at diurnal curve value 1.0.
    base_qps: float
    #: Sinusoid period; 0 disables the diurnal modulation.
    diurnal_period_s: float = 0.0
    #: Peak-to-mean modulation depth in [0, 1).
    diurnal_amplitude: float = 0.0
    #: Number of burst windows scattered uniformly over the run.
    bursts: int = 0
    #: Rate multiplier inside a burst window.
    burst_factor: float = 4.0
    burst_duration_s: float = 0.5
    #: Size of the skewed hot-key set and the probability mass on it.
    hot_keys: int = 16
    hot_fraction: float = 0.8
    #: Zipf exponent over the hot set (1.0 = classic harmonic weights).
    zipf_s: float = 1.0
    #: Total embedding-key universe (cold keys are uniform over it).
    key_space: int = 1 << 20
    #: Per-request latency SLO used as the queue-shed deadline.
    deadline_s: float = 0.25

    def __post_init__(self):
        if self.duration_s <= 0 or self.base_qps <= 0:
            raise ValueError("duration_s and base_qps must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_keys < 1 or self.key_space < self.hot_keys:
            raise ValueError("need 1 <= hot_keys <= key_space")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")


class TrafficGenerator:
    """Deterministic request stream for one :class:`TrafficConfig`."""

    def __init__(self, config: TrafficConfig):
        self.config = config
        rng = random.Random(config.seed)
        # Burst windows are fixed at construction so rate(t) is a pure
        # function thereafter.
        self._burst_windows: list[tuple[float, float]] = sorted(
            (start, start + config.burst_duration_s)
            for start in (
                rng.uniform(0.0, config.duration_s) for _ in range(config.bursts)
            )
        )
        # Zipf cumulative weights over the hot set.
        weights = [1.0 / (i + 1) ** config.zipf_s for i in range(config.hot_keys)]
        total = sum(weights)
        acc, cum = 0.0, []
        for w in weights:
            acc += w / total
            cum.append(acc)
        self._hot_cumulative = cum
        self._rng = rng

    # ------------------------------------------------------------------
    def rate(self, t: float) -> float:
        """Instantaneous offered load (requests/s) at simulated time t."""
        config = self.config
        rate = config.base_qps
        if config.diurnal_period_s > 0.0 and config.diurnal_amplitude > 0.0:
            rate *= 1.0 + config.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / config.diurnal_period_s
            )
        for start, end in self._burst_windows:
            if start <= t < end:
                rate *= config.burst_factor
                break
        return rate

    @property
    def peak_rate(self) -> float:
        config = self.config
        peak = config.base_qps * (1.0 + config.diurnal_amplitude)
        if self._burst_windows:
            peak *= config.burst_factor
        return peak

    def _draw_key(self) -> int:
        config = self.config
        r = self._rng.random()
        if r < config.hot_fraction:
            u = self._rng.random()
            for key, edge in enumerate(self._hot_cumulative):
                if u <= edge:
                    return key
            return config.hot_keys - 1
        return config.hot_keys + self._rng.randrange(
            config.key_space - config.hot_keys
        )

    # ------------------------------------------------------------------
    def generate(self) -> list[Request]:
        """Materialize the full stream (restartable: fresh RNG state)."""
        self._rng = random.Random(self.config.seed)
        # Re-consume the construction draws so generate() is idempotent
        # regardless of how many times it runs.
        for _ in range(self.config.bursts):
            self._rng.uniform(0.0, self.config.duration_s)
        requests: list[Request] = []
        config = self.config
        peak = self.peak_rate
        t = 0.0
        rid = 0
        while True:
            # Thinning: candidate gaps at the peak rate, accepted with
            # probability rate(t)/peak — an exact inhomogeneous Poisson
            # sampler as long as rate(t) <= peak everywhere.
            t += self._rng.expovariate(peak)
            if t >= config.duration_s:
                break
            if self._rng.random() * peak > self.rate(t):
                continue
            requests.append(
                Request(
                    rid=rid,
                    arrival_s=t,
                    key=self._draw_key(),
                    deadline_s=t + config.deadline_s,
                )
            )
            rid += 1
        return requests

    def __iter__(self) -> Iterator[Request]:
        return iter(self.generate())
