"""Per-replica request queues with admission control.

A :class:`RequestQueue` is plain FIFO with two protective behaviours:

- **admission control** — a bounded depth; a push beyond it is refused
  and the request counts as *shed* (load shedding at the front door
  beats queueing work that will blow its deadline anyway);
- **deadline expiry** — before a batch is formed, requests whose SLO
  deadline already passed are dropped and counted as *timed out*
  (serving them would burn GPU time producing an answer nobody is
  waiting for).

Counters live on the queue so fleet metrics can aggregate them
per-replica.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.serve.traffic import Request

__all__ = ["RequestQueue"]


class RequestQueue:
    """Bounded FIFO of pending requests for one replica."""

    def __init__(self, max_depth: int = 256):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._items: deque[Request] = deque()
        self.shed = 0
        self.timed_out = 0
        self.pushed = 0
        #: High-water mark of the queue depth.
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, request: Request) -> bool:
        """Admit ``request``; False (and a shed count) when full."""
        if len(self._items) >= self.max_depth:
            self.shed += 1
            return False
        self._items.append(request)
        self.pushed += 1
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        return True

    def expire(self, now: float) -> list[Request]:
        """Drop (and count) queued requests whose deadline passed."""
        expired: list[Request] = []
        kept: deque[Request] = deque()
        for request in self._items:
            if request.deadline_s <= now:
                expired.append(request)
            else:
                kept.append(request)
        if expired:
            self._items = kept
            self.timed_out += len(expired)
        return expired

    def oldest(self) -> Optional[Request]:
        return self._items[0] if self._items else None

    def pop_batch(self, n: int) -> list[Request]:
        """Dequeue up to ``n`` requests in arrival order."""
        batch: list[Request] = []
        while self._items and len(batch) < n:
            batch.append(self._items.popleft())
        return batch

    def drain(self) -> list[Request]:
        """Remove and return everything (replica death: requeue/shed)."""
        items = list(self._items)
        self._items.clear()
        return items
