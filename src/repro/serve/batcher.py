"""Batching policies for the continuous-batching scheduler.

A policy answers one question whenever its replica is free: *serve a
batch now, and how large — or wait, and until when?*  Three policies
span the design space the serving bench compares:

- :class:`FixedSizeBatcher` — the classic throughput-first policy:
  wait until exactly ``batch`` requests are queued.  Utilization is
  great at high load; at moderate load the fill wait dominates tail
  latency (the p99 pathology ``BENCH_serving.json`` quantifies).
- :class:`ContinuousBatcher` — serve whatever is queued (up to
  ``max_batch``) the moment the replica is free; optionally linger
  ``max_wait_s`` after the oldest arrival to let a partial batch fill,
  but never past a request's deadline slack.
- :class:`TokenBucketBatcher` — continuous batching behind a token
  bucket (``rate`` batches/s, ``burst`` capacity): a damper that
  spreads launch times out, trading a bounded launch delay for
  insulation from arrival bursts (and modeling per-batch ancillary
  costs a shared fleet must meter).

``make_policy("continuous:32")`` parses the spec strings used by the
bench and the chaos campaigns.
"""

from __future__ import annotations

from typing import Optional

from repro.serve.queue import RequestQueue

__all__ = [
    "BatchPolicy",
    "FixedSizeBatcher",
    "ContinuousBatcher",
    "TokenBucketBatcher",
    "make_policy",
]


class BatchPolicy:
    """Decides when a free replica forms its next batch."""

    name = "base"
    max_batch = 1

    def ready(self, queue: RequestQueue, now: float) -> int:
        """Batch size to serve *now* (0 = not ready yet)."""
        raise NotImplementedError

    def next_poll(self, queue: RequestQueue, now: float) -> Optional[float]:
        """Earliest future time the decision could flip without a new
        arrival (None = only an arrival can change it)."""
        return None

    def on_batch(self, now: float) -> None:
        """Notification that a batch launched (token accounting)."""

    def clone(self) -> "BatchPolicy":
        """Fresh instance with the same configuration (per replica)."""
        raise NotImplementedError


class FixedSizeBatcher(BatchPolicy):
    """Wait for exactly ``batch`` requests (optionally capped waiting)."""

    def __init__(self, batch: int, *, max_wait_s: Optional[float] = None):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = batch
        self.max_batch = batch
        self.max_wait_s = max_wait_s
        self.name = f"fixed:{batch}"

    def ready(self, queue: RequestQueue, now: float) -> int:
        if len(queue) >= self.batch:
            return self.batch
        oldest = queue.oldest()
        if (
            self.max_wait_s is not None
            and oldest is not None
            and now - oldest.arrival_s >= self.max_wait_s
        ):
            return len(queue)
        return 0

    def next_poll(self, queue: RequestQueue, now: float) -> Optional[float]:
        oldest = queue.oldest()
        if self.max_wait_s is None or oldest is None:
            return None
        return oldest.arrival_s + self.max_wait_s

    def clone(self) -> "FixedSizeBatcher":
        return FixedSizeBatcher(self.batch, max_wait_s=self.max_wait_s)


class ContinuousBatcher(BatchPolicy):
    """Serve whatever is queued as soon as the replica frees up."""

    def __init__(self, max_batch: int, *, max_wait_s: float = 0.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.name = f"continuous:{max_batch}"

    def ready(self, queue: RequestQueue, now: float) -> int:
        depth = len(queue)
        if depth == 0:
            return 0
        if depth >= self.max_batch or self.max_wait_s <= 0.0:
            return min(depth, self.max_batch)
        oldest = queue.oldest()
        # Deadline-bounded linger: give a partial batch a chance to
        # fill, but never let the oldest request's slack run out.
        linger_until = min(
            oldest.arrival_s + self.max_wait_s,
            oldest.deadline_s,
        )
        if now >= linger_until:
            return min(depth, self.max_batch)
        return 0

    def next_poll(self, queue: RequestQueue, now: float) -> Optional[float]:
        oldest = queue.oldest()
        if oldest is None or self.max_wait_s <= 0.0:
            return None
        return min(oldest.arrival_s + self.max_wait_s, oldest.deadline_s)

    def clone(self) -> "ContinuousBatcher":
        return ContinuousBatcher(self.max_batch, max_wait_s=self.max_wait_s)


class TokenBucketBatcher(BatchPolicy):
    """Continuous batching metered by a token bucket."""

    def __init__(self, max_batch: int, *, rate: float, burst: float = 2.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if rate <= 0.0 or burst < 1.0:
            raise ValueError("need rate > 0 and burst >= 1")
        self.max_batch = max_batch
        self.rate = rate
        self.burst = burst
        self.name = f"token_bucket:{max_batch}@{rate:g}"
        self._tokens = burst
        self._refilled_at = 0.0

    def _refill(self, now: float) -> None:
        if now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
            self._refilled_at = now

    def ready(self, queue: RequestQueue, now: float) -> int:
        if len(queue) == 0:
            return 0
        self._refill(now)
        if self._tokens >= 1.0:
            return min(len(queue), self.max_batch)
        return 0

    def next_poll(self, queue: RequestQueue, now: float) -> Optional[float]:
        if len(queue) == 0:
            return None
        self._refill(now)
        if self._tokens >= 1.0:
            return None
        return now + (1.0 - self._tokens) / self.rate

    def on_batch(self, now: float) -> None:
        self._refill(now)
        self._tokens = max(0.0, self._tokens - 1.0)

    def clone(self) -> "TokenBucketBatcher":
        return TokenBucketBatcher(self.max_batch, rate=self.rate, burst=self.burst)


def make_policy(spec: str) -> BatchPolicy:
    """Parse ``"fixed:8"`` / ``"continuous:32"`` / ``"token_bucket:32@40"``.

    Fixed-size accepts an optional wait cap: ``"fixed:8+0.05"`` waits at
    most 50 ms for the batch to fill.  Token bucket takes ``@rate`` and
    an optional ``+burst``: ``"token_bucket:32@40+4"``.
    """
    kind, _, arg = spec.partition(":")
    if kind == "fixed":
        size, _, wait = arg.partition("+")
        return FixedSizeBatcher(
            int(size), max_wait_s=float(wait) if wait else None
        )
    if kind == "continuous":
        size, _, wait = arg.partition("+")
        return ContinuousBatcher(int(size), max_wait_s=float(wait) if wait else 0.0)
    if kind == "token_bucket":
        size, _, rest = arg.partition("@")
        rate, _, burst = rest.partition("+")
        return TokenBucketBatcher(
            int(size), rate=float(rate), burst=float(burst) if burst else 2.0
        )
    raise ValueError(f"unknown batching policy spec: {spec!r}")
