"""The serving fleet: a discrete-event simulation of replicated inference.

:class:`ServingFleet` runs a heap-based event loop over *simulated*
time, multiplexing a pre-generated request stream (``repro.serve.
traffic``) across a set of sharded replicas whose batch latency was
measured once from the real simulator (``repro.serve.replica``).  The
loop has five event kinds:

- ``ARRIVAL`` — route a request to the least-loaded replica (admission
  control may shed it);
- ``POLL``    — a batching policy asked to be re-evaluated at a future
  time (deadline-bounded linger, token refill);
- ``DONE``    — a batch completed: record per-request latencies, free
  the replica, immediately try to form the next batch (continuous
  batching lives here);
- ``TICK``    — control-plane heartbeat: close the metrics window,
  consult the :class:`Autoscaler`, provision or retire replicas;
- ``UP``      — a provisioned replica finished restoring its shards
  and joins the fleet.

Faults flow through the same :class:`FaultInjector` the training stack
uses, with the replica id standing in for the rank and the replica's
batch counter for the iteration: ``begin_iteration`` fires CRASH
events (the replica dies, its queue redistributes), ``on_collective``
perturbs batch service time (DELAY / TRANSIENT retries) or hangs the
batch until the watchdog declares the replica dead, and
``on_storage_write`` decides whether a *provisioning* replica's warm
checkpoint image is intact — a damaged image falls back to a cold-tier
re-pull at ``fallback_factor`` the cost.  Replacement capacity is
provisioned with the same restore + verify cost model the elastic
trainer charges (``CHECKPOINT_RESTORE_BANDWIDTH`` et al.), so serving
recovery and training recovery stay mutually calibrated.

Everything is deterministic: no wall clock, no ambient RNG — the heap
is ordered by ``(time, sequence)`` and every random choice was made by
the seeded traffic generator or fault schedule up front.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.distributed.fault import FaultInjector, FaultSchedule
from repro.perf.timeline import Tracer
from repro.perf.trainer import (
    CHECKPOINT_RESTORE_BANDWIDTH,
    CHECKPOINT_VERIFY_BANDWIDTH,
)
from repro.serve.autoscale import AutoscaleConfig, Autoscaler
from repro.serve.batcher import make_policy
from repro.serve.metrics import ServeMetrics, ServeResult
from repro.serve.queue import RequestQueue
from repro.serve.replica import Replica, ReplicaState, ServiceModel
from repro.serve.traffic import Request, TrafficConfig, TrafficGenerator

__all__ = ["FleetConfig", "ServingFleet", "simulate_serving"]

# Event ordering ranks: at equal timestamps, finish work before
# admitting more (DONE < ARRIVAL) and let the control plane observe the
# settled state last.
_PRIO = {"done": 0, "up": 1, "watchdog": 2, "arrival": 3, "poll": 4, "tick": 5}


@dataclass(frozen=True)
class FleetConfig:
    """One serving-fleet experiment."""

    service: ServiceModel
    traffic: TrafficConfig
    #: Initial replica count (the autoscaler may move it afterwards).
    replicas: int = 2
    #: Batching-policy spec, e.g. ``"continuous:32"`` (see
    #: :func:`repro.serve.batcher.make_policy`).
    policy: str = "continuous:32"
    #: Per-replica admission-control bound.
    queue_depth: int = 256
    autoscale: Optional[AutoscaleConfig] = None
    #: Control-plane heartbeat (metrics window and autoscaler cadence).
    control_interval_s: float = 0.25
    #: Watchdog: a batch in flight longer than this multiple of its
    #: expected service time means a hung collective — the replica is
    #: declared dead and replaced.
    hang_timeout_s: float = 1.0
    schedule: Optional[FaultSchedule] = None
    #: Elastic-rendezvous cost charged before a new replica restores.
    rendezvous_s: float = 0.05
    #: Cold-tier re-pull multiplier when a warm image is damaged.
    fallback_factor: float = 2.0
    #: Optional :class:`repro.perf.timeline.Tracer` receiving
    #: ``serve:batch@<rid>`` spans and fault/scaling marks.
    tracer: Optional[Tracer] = None
    #: Let the run continue past the traffic window until queues drain
    #: (bounded by ``drain_grace_s``).
    drain_grace_s: float = 2.0

    def provision_s(self) -> float:
        """Cost of standing up one replica from the warm image."""
        nbytes = self.service.model_bytes
        return (
            self.rendezvous_s
            + nbytes / CHECKPOINT_RESTORE_BANDWIDTH
            + nbytes / CHECKPOINT_VERIFY_BANDWIDTH
        )


@dataclass(order=True)
class _Event:
    time: float
    prio: int
    seq: int
    payload: tuple = field(compare=False, default=())


class ServingFleet:
    """Heap-driven discrete-event simulation of one :class:`FleetConfig`."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self.metrics = ServeMetrics(slo_s=config.traffic.deadline_s)
        self.injector = (
            FaultInjector(config.schedule) if config.schedule is not None else None
        )
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._rid = itertools.count()
        self.replicas: dict[int, Replica] = {}
        self._now = 0.0
        self._provision_seq = 0

    # -- plumbing ------------------------------------------------------
    def _push(self, time: float, payload: tuple) -> None:
        heapq.heappush(
            self._heap,
            _Event(time, _PRIO[payload[0]], next(self._seq), payload),
        )

    def _mark(self, label: str) -> None:
        self.metrics.note(self._now, label)
        if self.config.tracer is not None:
            self.config.tracer.record_mark(label, self._now)

    def _live(self) -> list[Replica]:
        return [r for r in self.replicas.values() if r.state is ReplicaState.LIVE]

    def _starting(self) -> list[Replica]:
        return [r for r in self.replicas.values() if r.state is ReplicaState.STARTING]

    # -- provisioning --------------------------------------------------
    def _provision(self, *, initial: bool = False) -> Replica:
        config = self.config
        rid = next(self._rid)
        replica = Replica(
            rid=rid,
            policy=make_policy(config.policy),
            queue=RequestQueue(config.queue_depth),
            key_cache_size=config.service.spec.key_cache_size,
        )
        self.replicas[rid] = replica
        if initial:
            # The initial fleet is warm at t=0 (provisioned before the
            # traffic window opens).
            replica.state = ReplicaState.LIVE
            replica.live_since = 0.0
            return replica
        startup = config.provision_s()
        self._provision_seq += 1
        if self.injector is not None:
            decision = self.injector.on_storage_write(
                rank=rid, iteration=self._provision_seq
            )
            if not decision.benign:
                # Warm image torn/corrupt/lost: the integrity verify
                # catches it and the replica re-pulls from the cold
                # tier instead of serving from damaged shards.
                self.metrics.storage_fallbacks += 1
                self._mark(f"serve:fallback@{rid}")
                startup *= config.fallback_factor
        self.metrics.provisions += 1
        self._mark(f"serve:provision@{rid}")
        self._push(self._now + startup, ("up", rid))
        return replica

    def _retire(self, replica: Replica) -> None:
        """Graceful scale-down: redistribute the queue, leave the fleet."""
        self._down(replica, redistribute=True)
        self.metrics.scale_downs += 1
        self._mark(f"serve:scale_down@{replica.rid}")

    def _down(self, replica: Replica, *, redistribute: bool) -> None:
        if replica.state is ReplicaState.LIVE:
            self.metrics.gpu_s += (
                (self._now - replica.live_since) * self.config.service.spec.gpus
            )
        replica.state = ReplicaState.DOWN
        replica.busy = False
        replica.wake_seq += 1
        replica.invalidate_cache()
        stranded = replica.queue.drain()
        if redistribute:
            for request in stranded:
                self._route(request, exclude=replica.rid)
        else:
            replica.queue.shed += len(stranded)
            self.metrics.shed += len(stranded)

    # -- routing -------------------------------------------------------
    def _route(self, request: Request, *, exclude: Optional[int] = None) -> None:
        """Send to the least-loaded replica (live preferred, else one
        still starting); shed when nobody can ever serve it."""
        candidates = [
            r for r in self._live() if r.rid != exclude
        ] or [r for r in self._starting() if r.rid != exclude]
        if not candidates:
            self.metrics.shed += 1
            return
        target = min(candidates, key=lambda r: (len(r.queue), r.rid))
        if not target.queue.push(request):
            self.metrics.shed += 1
            return
        if target.state is ReplicaState.LIVE and not target.busy:
            self._serve(target)

    # -- the scheduler -------------------------------------------------
    def _serve(self, replica: Replica) -> None:
        """Try to form and launch a batch on a free, live replica."""
        if replica.busy or replica.state is not ReplicaState.LIVE:
            return
        now = self._now
        expired = replica.queue.expire(now)
        self.metrics.timed_out += len(expired)
        size = replica.policy.ready(replica.queue, now)
        if size <= 0:
            poll_at = replica.policy.next_poll(replica.queue, now)
            if poll_at is not None and poll_at > now:
                replica.wake_seq += 1
                self._push(poll_at, ("poll", replica.rid, replica.wake_seq))
            return
        batch = replica.queue.pop_batch(size)
        if not batch:
            return
        self._launch(replica, batch)

    def _launch(self, replica: Replica, batch: list[Request]) -> None:
        config = self.config
        now = self._now
        base = config.service.latency(len(batch))
        service = base
        cold = replica.cold_keys(batch)
        if cold:
            service += cold * config.service.spec.cold_key_penalty_s

        if self.injector is not None:
            if self.injector.begin_replica_batch(replica.rid, replica.batches_served):
                self.metrics.crashes += 1
                self._mark(f"serve:crash@{replica.rid}")
                for request in batch:
                    self._route(request, exclude=replica.rid)
                self._down(replica, redistribute=True)
                return
            attempt = 0
            while True:
                decision = self.injector.on_collective(
                    rank=replica.rid, kind="all_gather", attempt=attempt
                )
                if decision.hang:
                    # The collective never completes; the watchdog
                    # converts the hang into a dead replica after the
                    # timeout.  The batch is re-routed (clients retry).
                    self.metrics.hangs += 1
                    self._mark(f"serve:hang@{replica.rid}")
                    self._push(
                        now + config.hang_timeout_s,
                        ("watchdog", replica.rid, batch, replica.wake_seq),
                    )
                    replica.busy = True
                    return
                if decision.fail:
                    # Transient collective failure: the process group
                    # retries with backoff; the batch pays for it.
                    self.metrics.retries += 1
                    service += max(base * 0.25, 1e-4)
                    attempt += 1
                    continue
                service = service * decision.duration_factor + decision.delay_s
                break

        replica.busy = True
        replica.policy.on_batch(now)
        self._push(now + service, ("done", replica.rid, batch, now))

    # -- event handlers ------------------------------------------------
    def _on_done(self, replica: Replica, batch: list[Request], started: float) -> None:
        now = self._now
        if self.config.tracer is not None:
            self.config.tracer.record(
                f"serve:batch@{replica.rid}", f"replica{replica.rid}", started, now
            )
        replica.busy = False
        replica.batches_served += 1
        replica.requests_served += len(batch)
        replica.busy_s += now - started
        self.metrics.batches += 1
        for request in batch:
            self.metrics.observe(now - request.arrival_s)
        self._serve(replica)

    def _on_watchdog(self, replica: Replica, batch: list[Request], wake_seq: int) -> None:
        if replica.state is not ReplicaState.LIVE or replica.wake_seq != wake_seq:
            return
        self._mark(f"serve:watchdog@{replica.rid}")
        for request in batch:
            self._route(request, exclude=replica.rid)
        self._down(replica, redistribute=True)

    def _on_tick(self, autoscaler: Optional[Autoscaler]) -> None:
        config = self.config
        live = self._live()
        starting = self._starting()
        depth = sum(len(r.queue) for r in live + starting)
        sample = self.metrics.tick(
            t=self._now,
            interval_s=config.control_interval_s,
            queue_depth=depth,
            live=len(live),
            starting=len(starting),
        )
        if autoscaler is None:
            return
        delta = autoscaler.decide(
            live=len(live),
            starting=len(starting),
            queue_depth=depth,
            window_p99_s=sample.p99_s,
        )
        if delta > 0:
            self.metrics.scale_ups += 1
            self._mark(f"serve:scale_up+{delta}")
            for _ in range(delta):
                self._provision()
        elif delta < 0:
            # Retire the emptiest non-busy live replica; if all are
            # busy, skip this tick rather than kill in-flight work.
            idle = [r for r in live if not r.busy]
            if idle:
                victim = min(idle, key=lambda r: (len(r.queue), -r.rid))
                self._retire(victim)

    # -- main loop -----------------------------------------------------
    def run(self) -> ServeResult:
        config = self.config
        if not config.service.measured:
            config.service.measure()
        generator = TrafficGenerator(config.traffic)
        requests = generator.generate()
        self.metrics.arrived = len(requests)
        for _ in range(config.replicas):
            self._provision(initial=True)
        for request in requests:
            self._push(request.arrival_s, ("arrival", request))
        autoscaler = (
            Autoscaler(config.autoscale) if config.autoscale is not None else None
        )
        horizon = config.traffic.duration_s + config.drain_grace_s
        t = config.control_interval_s
        while t <= horizon + 1e-12:
            self._push(t, ("tick",))
            t += config.control_interval_s

        while self._heap:
            event = heapq.heappop(self._heap)
            if event.time > horizon:
                break
            self._now = event.time
            kind = event.payload[0]
            if kind == "arrival":
                self._route(event.payload[1])
            elif kind == "done":
                _, rid, batch, started = event.payload
                self._on_done(self.replicas[rid], batch, started)
            elif kind == "poll":
                _, rid, wake_seq = event.payload
                replica = self.replicas[rid]
                if (
                    replica.wake_seq == wake_seq
                    and replica.state is ReplicaState.LIVE
                ):
                    self._serve(replica)
            elif kind == "watchdog":
                _, rid, batch, wake_seq = event.payload
                self._on_watchdog(self.replicas[rid], batch, wake_seq)
            elif kind == "up":
                replica = self.replicas[event.payload[1]]
                if replica.state is ReplicaState.STARTING:
                    replica.state = ReplicaState.LIVE
                    replica.live_since = self._now
                    self._mark(f"serve:up@{replica.rid}")
                    self._serve(replica)
            elif kind == "tick":
                self._on_tick(autoscaler)

        self._now = horizon
        for replica in self._live():
            self.metrics.gpu_s += (
                (horizon - replica.live_since) * config.service.spec.gpus
            )
            # Anything still queued at the horizon never got served.
            self.metrics.timed_out += len(replica.queue.expire(float("inf")))
        for replica in self._starting():
            replica.state = ReplicaState.DOWN
        return self.metrics.finish(
            duration_s=config.traffic.duration_s,
            gpus_per_replica=config.service.spec.gpus,
        )


def simulate_serving(config: FleetConfig) -> ServeResult:
    """Run one fleet simulation end-to-end (convenience wrapper)."""
    return ServingFleet(config).run()
