"""SLO accounting for the serving fleet.

:class:`ServeMetrics` is the single sink every fleet event reports to:
request latencies land in a cumulative :class:`LatencyHistogram` (and a
per-control-window one for the autoscaler's p99 signal), admission and
fault counters accumulate, and each control tick appends a
:class:`TickSample` so benches can plot QPS/p99/fleet-size against
time.  ``finish()`` freezes everything into a :class:`ServeResult`,
which knows how to render itself as a :class:`repro.perf.PerfResult`
row (the serving columns added alongside this module) and as the JSON
dict ``BENCH_serving.json`` stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.perf.metrics import LatencyHistogram, PerfResult

__all__ = ["TickSample", "ServeMetrics", "ServeResult"]


@dataclass(frozen=True)
class TickSample:
    """Fleet state at one control tick (the autoscaler's observation)."""

    t: float
    #: Served requests/s over the window ending at ``t``.
    qps: float
    #: Window p99 latency (0.0 when nothing completed in the window).
    p99_s: float
    queue_depth: int
    live: int
    starting: int


class ServeMetrics:
    """Mutable accumulator the fleet event loop reports into."""

    def __init__(self, *, slo_s: float):
        self.slo_s = slo_s
        self.latency = LatencyHistogram()
        self._window = LatencyHistogram()
        self.arrived = 0
        self.served = 0
        self.shed = 0
        self.timed_out = 0
        self.slo_violations = 0
        self.batches = 0
        self.crashes = 0
        self.hangs = 0
        self.retries = 0
        self.provisions = 0
        self.storage_fallbacks = 0
        self.scale_ups = 0
        self.scale_downs = 0
        #: Integral of (live replicas x gpus) over simulated time.
        self.gpu_s = 0.0
        self.samples: list[TickSample] = []
        #: Timestamped control-plane events (crashes, hangs, scaling,
        #: provisioning) — what the recovery analysis windows on.
        self.events: list[tuple[float, str]] = []

    def note(self, t: float, label: str) -> None:
        self.events.append((t, label))

    def observe(self, latency_s: float) -> None:
        """One request completed end-to-end in ``latency_s``."""
        self.served += 1
        self.latency.add(latency_s)
        self._window.add(latency_s)
        if latency_s > self.slo_s:
            self.slo_violations += 1

    def tick(
        self,
        *,
        t: float,
        interval_s: float,
        queue_depth: int,
        live: int,
        starting: int,
    ) -> TickSample:
        """Close the current window and record a fleet-state sample."""
        window = self._window
        qps = window.count / interval_s if interval_s > 0 else 0.0
        p99 = window.percentile(99.0) if window.count else 0.0
        sample = TickSample(
            t=t,
            qps=qps,
            p99_s=p99,
            queue_depth=queue_depth,
            live=live,
            starting=starting,
        )
        self.samples.append(sample)
        self._window = LatencyHistogram()
        return sample

    def finish(self, *, duration_s: float, gpus_per_replica: int) -> "ServeResult":
        summary = self.latency.summary()
        return ServeResult(
            duration_s=duration_s,
            slo_s=self.slo_s,
            gpus_per_replica=gpus_per_replica,
            arrived=self.arrived,
            served=self.served,
            shed=self.shed,
            timed_out=self.timed_out,
            slo_violations=self.slo_violations,
            batches=self.batches,
            crashes=self.crashes,
            hangs=self.hangs,
            retries=self.retries,
            provisions=self.provisions,
            storage_fallbacks=self.storage_fallbacks,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            gpu_s=self.gpu_s,
            latency_mean_s=summary["mean"],
            latency_p50_s=summary["p50"],
            latency_p95_s=summary["p95"],
            latency_p99_s=summary["p99"],
            latency_max_s=summary["max"],
            samples=tuple(self.samples),
            events=tuple(self.events),
        )


@dataclass(frozen=True)
class ServeResult:
    """Frozen outcome of one fleet simulation."""

    duration_s: float
    slo_s: float
    gpus_per_replica: int
    arrived: int
    served: int
    shed: int
    timed_out: int
    slo_violations: int
    batches: int
    crashes: int
    hangs: int
    retries: int
    provisions: int
    storage_fallbacks: int
    scale_ups: int
    scale_downs: int
    gpu_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_max_s: float
    samples: tuple = field(default_factory=tuple)
    events: tuple = field(default_factory=tuple)

    @property
    def qps(self) -> float:
        return self.served / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def qps_per_gpu(self) -> float:
        """Served requests per GPU-second actually provisioned."""
        return self.served / self.gpu_s if self.gpu_s > 0 else 0.0

    @property
    def goodput(self) -> float:
        """Fraction of arrivals served within the SLO."""
        if self.arrived == 0:
            return 1.0
        return (self.served - self.slo_violations) / self.arrived

    @property
    def avg_batch(self) -> float:
        return self.served / self.batches if self.batches else 0.0

    def recovery_ratio(self) -> Optional[float]:
        """Post-recovery QPS as a fraction of pre-fault QPS.

        Windows on the first replica-killing fault (crash or watchdog
        kill): *pre* is the mean window-QPS before it, *post* is the
        mean over the last quarter of the in-traffic windows after it
        (skipping the outage dip while replacement capacity restores).
        None when the run had no replica-killing fault or too little
        data on either side.
        """
        fault_times = [
            t
            for t, label in self.events
            if label.startswith(("serve:crash", "serve:watchdog"))
        ]
        if not fault_times or not self.samples:
            return None
        fault_t = min(fault_times)
        pre = [s.qps for s in self.samples if s.t <= fault_t and s.qps > 0]
        tail = [s for s in self.samples if fault_t < s.t <= self.duration_s]
        post = [s.qps for s in tail[-max(1, len(tail) // 4) :]]
        if not pre or not post:
            return None
        return (sum(post) / len(post)) / (sum(pre) / len(pre))

    def to_perf_result(self, name: str, *, world_size: int, backend: str = "") -> PerfResult:
        """Render as a sweep-compatible :class:`PerfResult` row."""
        result = PerfResult(
            name=name,
            world_size=world_size,
            batch_size=0,
            backend=backend,
            qps_per_gpu=self.qps_per_gpu,
            requests_served=self.served,
            requests_shed=self.shed,
            requests_timed_out=self.timed_out,
            latency_p50_s=self.latency_p50_s,
            latency_p95_s=self.latency_p95_s,
            latency_p99_s=self.latency_p99_s,
            faults_injected=self.crashes + self.hangs + self.retries,
            recoveries=self.provisions,
        )
        result.extras["serving"] = self.to_dict()
        return result

    def to_dict(self) -> dict:
        """JSON-ready report (what ``BENCH_serving.json`` stores)."""
        return {
            "duration_s": self.duration_s,
            "slo_s": self.slo_s,
            "qps": self.qps,
            "qps_per_gpu": self.qps_per_gpu,
            "goodput": self.goodput,
            "arrived": self.arrived,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "slo_violations": self.slo_violations,
            "batches": self.batches,
            "avg_batch": self.avg_batch,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "retries": self.retries,
            "provisions": self.provisions,
            "storage_fallbacks": self.storage_fallbacks,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "gpu_s": self.gpu_s,
            "recovery_ratio": self.recovery_ratio(),
            "latency_ms": {
                "mean": self.latency_mean_s * 1e3,
                "p50": self.latency_p50_s * 1e3,
                "p95": self.latency_p95_s * 1e3,
                "p99": self.latency_p99_s * 1e3,
                "max": self.latency_max_s * 1e3,
            },
        }
