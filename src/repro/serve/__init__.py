"""repro.serve: multi-tenant inference serving on the simulator core.

The training side of the repo reproduces the paper's FSDP results; this
package answers the follow-on production question — *what does it cost
to serve the sharded model?* — with a discrete-event serving fleet:

- :mod:`repro.serve.traffic` — seedable request streams (diurnal
  curves, Poisson arrivals via thinning, bursts, Zipf hot-key skew);
- :mod:`repro.serve.replica` — sharded inference replicas whose batch
  latency is measured from the real simulator (eval-mode FSDP forward,
  either backend), then interpolated at fleet scale;
- :mod:`repro.serve.queue` / :mod:`repro.serve.batcher` — bounded
  admission queues and the batching policies the bench compares
  (fixed-size, continuous, token-bucket);
- :mod:`repro.serve.autoscale` — tick-driven elastic scaling with
  immediate capacity repair after faults;
- :mod:`repro.serve.fleet` — the event loop tying it together, with
  fault injection through the same :class:`FaultInjector` training
  uses;
- :mod:`repro.serve.metrics` — SLO accounting (p50/p95/p99, QPS/GPU,
  shed/timeout counters) rendered as PerfResult rows and bench JSON.

Quick start::

    from repro.serve import (
        FleetConfig, ReplicaSpec, ServiceModel, TrafficConfig,
        simulate_serving,
    )

    spec = ReplicaSpec(name="dhen", build_model=..., make_batch=...,
                       gpus=8, max_batch=32)
    result = simulate_serving(FleetConfig(
        service=ServiceModel(spec),
        traffic=TrafficConfig(seed=0, duration_s=30.0, base_qps=400.0),
        replicas=4,
    ))
    print(result.qps, result.latency_p99_s)
"""

from repro.serve.autoscale import AutoscaleConfig, Autoscaler
from repro.serve.batcher import (
    BatchPolicy,
    ContinuousBatcher,
    FixedSizeBatcher,
    TokenBucketBatcher,
    make_policy,
)
from repro.serve.fleet import FleetConfig, ServingFleet, simulate_serving
from repro.serve.metrics import ServeMetrics, ServeResult, TickSample
from repro.serve.queue import RequestQueue
from repro.serve.replica import Replica, ReplicaSpec, ReplicaState, ServiceModel
from repro.serve.traffic import Request, TrafficConfig, TrafficGenerator

__all__ = [
    "AutoscaleConfig",
    "Autoscaler",
    "BatchPolicy",
    "ContinuousBatcher",
    "FixedSizeBatcher",
    "TokenBucketBatcher",
    "make_policy",
    "FleetConfig",
    "ServingFleet",
    "simulate_serving",
    "ServeMetrics",
    "ServeResult",
    "TickSample",
    "RequestQueue",
    "Replica",
    "ReplicaSpec",
    "ReplicaState",
    "ServiceModel",
    "Request",
    "TrafficConfig",
    "TrafficGenerator",
]
