"""Elastic autoscaling policy for the serving fleet.

The controller mirrors the shape of production serving autoscalers: it
observes the fleet once per control tick (queue pressure and the
window's p99 against the SLO), demands *sustained* evidence before
acting, and backs off for a cooldown after every action so provisioning
latency — which it cannot observe directly — has time to land.

Two signals can trigger a scale-up:

- **queue pressure** — queued requests per effective replica (live
  plus already-starting) exceeds ``target_queue_per_replica``;
- **SLO breach** — the window p99 exceeds ``p99_slo_s``.

Either signal sustained for ``breach_ticks`` consecutive ticks grows
the fleet by ``grow_step``.  A fleet below ``min_replicas`` (a crash
ate capacity) is repaired *immediately*, bypassing both the sustain
requirement and the cooldown — exactly the elastic-recovery path the
chaos campaigns exercise.  Scale-down requires ``idle_ticks`` of low
queue pressure **and** a comfortable p99 margin, and releases one
replica at a time.

The policy is deliberately deterministic — pure function of the
observed tick stream — so fleet simulations stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AutoscaleConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    min_replicas: int = 1
    max_replicas: int = 8
    #: Queue-pressure threshold (requests per effective replica).
    target_queue_per_replica: float = 8.0
    #: Window-p99 SLO; None disables the latency signal.
    p99_slo_s: Optional[float] = None
    #: Consecutive breached ticks required before growing.
    breach_ticks: int = 2
    #: Consecutive idle ticks required before shrinking.
    idle_ticks: int = 8
    #: Queue pressure below which a tick counts as idle.
    idle_queue_per_replica: float = 1.0
    #: Ticks to hold after any action (provisioning needs time to land).
    cooldown_ticks: int = 4
    #: Replicas added per scale-up action.
    grow_step: int = 1

    def __post_init__(self):
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.breach_ticks < 1 or self.idle_ticks < 1 or self.grow_step < 1:
            raise ValueError("breach_ticks, idle_ticks, grow_step must be >= 1")


class Autoscaler:
    """Tick-driven grow/shrink decisions for one fleet."""

    def __init__(self, config: AutoscaleConfig):
        self.config = config
        self._breached = 0
        self._idle = 0
        self._cooldown = 0

    def decide(
        self,
        *,
        live: int,
        starting: int,
        queue_depth: int,
        window_p99_s: float,
    ) -> int:
        """Replicas to add (>0), remove (<0), or hold (0) this tick."""
        config = self.config
        effective = live + starting
        # Capacity repair: a fleet below its floor is an emergency
        # (a crash or watchdog kill ate replicas) — refill immediately,
        # ignoring sustain counters and cooldown.
        if effective < config.min_replicas:
            self._breached = 0
            self._idle = 0
            self._cooldown = config.cooldown_ticks
            return config.min_replicas - effective

        pressure = queue_depth / max(effective, 1)
        breach = pressure > config.target_queue_per_replica
        if config.p99_slo_s is not None and window_p99_s > config.p99_slo_s:
            breach = True
        idle = (
            pressure < config.idle_queue_per_replica
            and not breach
            and (
                config.p99_slo_s is None
                or window_p99_s < 0.5 * config.p99_slo_s
            )
        )

        self._breached = self._breached + 1 if breach else 0
        self._idle = self._idle + 1 if idle else 0

        if self._cooldown > 0:
            self._cooldown -= 1
            return 0

        if breach and self._breached >= config.breach_ticks:
            grow = min(config.grow_step, config.max_replicas - effective)
            if grow > 0:
                self._breached = 0
                self._cooldown = config.cooldown_ticks
                return grow
            return 0

        if idle and self._idle >= config.idle_ticks and effective > config.min_replicas:
            self._idle = 0
            self._cooldown = config.cooldown_ticks
            return -1

        return 0
