"""Coordinated communicator abort (NCCL-abort semantics).

One :class:`CoordinatedAbort` is shared by every rank of a world and
installed on each rank's device (the same pattern as the fault
injector and flight recorder).  The first watchdog to declare a peer
dead — or a health-lease expiry — poisons the whole communicator:

- survivors blocked inside a rendezvous round are woken immediately
  through their registered condition variables (wall-clock fast) and
  raise :class:`repro.errors.RankFailureError` after charging their
  simulated clock only up to the declared detection point — roughly
  *one* watchdog interval for the whole group;
- collectives issued *after* the declaration fail fast at launch via
  :meth:`check`, with no additional simulated stall.

Without coordination (``enabled=False``) each survivor instead drains
every pending collective to its own deadline — the serial
one-timeout-per-pending-op stall the negative-control tests measure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import RankFailureError

__all__ = ["DEFAULT_HEALTH_PROBE_S", "CoordinatedAbort", "RankFailure"]

#: Simulated latency for an out-of-band health probe to notice a dead
#: process (agent heartbeat loss), charged when a crash is detected at
#: an iteration boundary rather than by a collective watchdog.
DEFAULT_HEALTH_PROBE_S = 5e-3


@dataclass(frozen=True)
class RankFailure:
    """One declared rank death."""

    rank: int
    sim_time: float
    detection_s: float
    reason: str = "watchdog"


class CoordinatedAbort:
    """World-scoped abort latch plus optional health leases.

    ``declare`` is idempotent per rank and notifies every registered
    condition variable so blocked rendezvous waiters re-evaluate their
    predicates immediately.  ``check`` raises for *any* declared
    failure regardless of which group issues the collective — aborting
    a communicator takes down every group that shares its ranks, which
    is exactly NCCL's abort granularity.

    Health leases are off by default (``lease_s=None``); when enabled,
    ranks ``renew`` at iteration boundaries and ``expire_leases``
    declares any rank whose lease lapsed.
    """

    def __init__(self, *, enabled: bool = True, lease_s: Optional[float] = None):
        self.enabled = enabled
        self.lease_s = lease_s
        self._lock = threading.Lock()
        self._failures: dict[int, RankFailure] = {}
        self._conditions: list[threading.Condition] = []
        self._leases: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Declaration and inspection
    # ------------------------------------------------------------------
    def declare(
        self,
        ranks: int | Iterable[int],
        *,
        sim_time: float,
        detection_s: float = 0.0,
        reason: str = "watchdog",
    ) -> None:
        if not self.enabled:
            return
        if isinstance(ranks, int):
            ranks = (ranks,)
        with self._lock:
            for rank in ranks:
                if rank not in self._failures:
                    self._failures[rank] = RankFailure(
                        rank=rank,
                        sim_time=sim_time,
                        detection_s=detection_s,
                        reason=reason,
                    )
            conditions = list(self._conditions)
        for cond in conditions:
            with cond:
                cond.notify_all()

    @property
    def poisoned(self) -> bool:
        return bool(self._failures)

    def failed_ranks(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._failures))

    def failures(self) -> tuple[RankFailure, ...]:
        with self._lock:
            return tuple(self._failures[r] for r in sorted(self._failures))

    def declared_time(self) -> float:
        """Latest simulated time at which a failure was declared."""
        with self._lock:
            if not self._failures:
                return 0.0
            return max(f.sim_time for f in self._failures.values())

    def detection_s(self) -> float:
        """Detection latency of the slowest declared failure."""
        with self._lock:
            if not self._failures:
                return 0.0
            return max(f.detection_s for f in self._failures.values())

    def check(self, *, kind: str, ranks: tuple, rank: int) -> None:
        """Fail fast if the communicator is poisoned."""
        if not self.enabled or not self._failures:
            return
        error = RankFailureError(
            kind=kind,
            ranks=ranks,
            rank=rank,
            failed_ranks=self.failed_ranks(),
            detection_s=self.detection_s(),
        )
        raise error

    # ------------------------------------------------------------------
    # Health leases
    # ------------------------------------------------------------------
    def renew(self, rank: int, now: float) -> None:
        with self._lock:
            self._leases[rank] = now

    def expire_leases(self, now: float) -> tuple[int, ...]:
        """Declare every rank whose lease lapsed; return the newly dead."""
        if not self.enabled or self.lease_s is None:
            return ()
        with self._lock:
            expired = tuple(
                rank
                for rank, renewed in self._leases.items()
                if now - renewed > self.lease_s and rank not in self._failures
            )
        for rank in expired:
            with self._lock:
                renewed = self._leases.get(rank, 0.0)
            self.declare(
                rank,
                sim_time=renewed + self.lease_s,
                detection_s=self.lease_s,
                reason="lease-expiry",
            )
        return expired

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register_condition(self, cond: threading.Condition) -> None:
        with self._lock:
            if not any(c is cond for c in self._conditions):
                self._conditions.append(cond)

    def reset(self) -> None:
        """Clear declarations for a new world incarnation."""
        with self._lock:
            self._failures.clear()
            self._leases.clear()
