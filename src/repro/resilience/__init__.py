"""Coordinated failure handling: abort, desync checking, peer healing.

Production FSDP deployments (paper §4, and the cluster
characterizations in PAPERS.md) treat three capabilities as table
stakes that plain watchdog-timeout recovery lacks:

- :mod:`repro.resilience.abort` — **coordinated abort**.  One rank's
  watchdog (or health-lease expiry) declaring a peer dead poisons the
  whole communicator: in-flight collectives on every survivor wake
  immediately and later collectives fail fast with
  :class:`repro.errors.RankFailureError` naming the dead rank(s),
  instead of each survivor serially burning one watchdog timeout per
  pending collective (NCCL communicator-abort semantics).
- :mod:`repro.resilience.desync` — **collective desync detection**.  A
  pre-launch cross-rank signature check over
  ``(kind, nbytes, dtype, group, seq)`` that raises
  :class:`repro.errors.CollectiveDesyncError` naming the divergent
  ranks and both signatures (the TORCH_DISTRIBUTED_DEBUG=DETAIL
  analog), with the flight-recorder dump attached.
- :mod:`repro.resilience.heal` — **checkpoint-free peer healing**.
  Under hybrid sharding every shard exists on ``W/F`` replicate-group
  peers; a replacement rank can restore its flat-param shards and
  optimizer state directly from a surviving peer at link bandwidth,
  falling back to checkpoint restore only when a whole shard group
  died.
"""

from repro.resilience.abort import (
    DEFAULT_HEALTH_PROBE_S,
    CoordinatedAbort,
    RankFailure,
)
from repro.resilience.desync import (
    DesyncVerdict,
    collective_signature,
    compare_signatures,
    perturb_signature,
)
from repro.resilience.heal import (
    PEER_HEAL_BANDWIDTH,
    HealContext,
    HealDeposit,
    HealPlan,
    payload_nbytes,
)

__all__ = [
    "DEFAULT_HEALTH_PROBE_S",
    "CoordinatedAbort",
    "RankFailure",
    "DesyncVerdict",
    "collective_signature",
    "compare_signatures",
    "perturb_signature",
    "PEER_HEAL_BANDWIDTH",
    "HealContext",
    "HealDeposit",
    "HealPlan",
    "payload_nbytes",
]
