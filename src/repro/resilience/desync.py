"""Pre-launch collective desync detection (DEBUG=DETAIL analog).

Every collective launch computes a local *signature*
``(kind, nbytes, dtype, group ranks, seq)``; the threaded backend
piggybacks signatures on the rendezvous payload and compares them
before combining data.  A mismatch means the SPMD program diverged —
some rank took a different branch, produced a different shape, or fell
a collective behind — and actually launching would deadlock (mismatched
participation) or silently corrupt data (mismatched reduction sizes).
The check converts that latent hang into an immediate
:class:`repro.errors.CollectiveDesyncError` naming the divergent ranks
and both signatures.

The expected signature is the majority signature across members,
tie-broken toward the lowest member rank; the divergent set is every
member whose signature differs from it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "DesyncVerdict",
    "collective_signature",
    "compare_signatures",
    "perturb_signature",
]


def collective_signature(
    *, kind: str, nbytes: int, dtype: str, ranks: tuple, seq: int
) -> tuple:
    return (kind, int(nbytes), dtype, tuple(ranks), int(seq))


def perturb_signature(sig: tuple) -> tuple:
    """Deterministic divergent variant of a signature.

    Used by the ``FaultKind.DESYNC`` negative control: the injected
    rank reports a signature one collective *behind* (seq-1 … the
    classic missed-conditional-collective divergence) with a doubled
    byte count, as if it were still replaying the previous launch with
    a different shape.
    """
    kind, nbytes, dtype, ranks, seq = sig
    return (kind, nbytes * 2, dtype, ranks, max(seq - 1, 0))


@dataclass(frozen=True)
class DesyncVerdict:
    """Cross-member comparison result for one collective launch."""

    expected: tuple
    actual_by_member: tuple  # ((member_rank, signature), ...)
    divergent_members: tuple  # member ranks whose signature != expected

    def actual_for(self, member: int) -> tuple:
        for m, sig in self.actual_by_member:
            if m == member:
                return sig
        return self.expected


def compare_signatures(
    signatures: Sequence[tuple],
) -> DesyncVerdict | None:
    """Compare one signature per member rank; ``None`` means in sync.

    ``signatures[i]`` is member rank ``i``'s signature.  The expected
    signature is the most common one; on a tie, the lowest member
    rank's signature wins (deterministic, and matches the convention
    that rank 0 defines the program).
    """
    if not signatures:
        return None
    counts = Counter(signatures)
    top = max(counts.values())
    candidates = [s for s, c in counts.items() if c == top]
    if len(candidates) == 1:
        expected = candidates[0]
    else:
        expected = next(s for s in signatures if s in candidates)
    divergent = tuple(
        member for member, sig in enumerate(signatures) if sig != expected
    )
    if not divergent:
        return None
    return DesyncVerdict(
        expected=expected,
        actual_by_member=tuple(
            (member, sig) for member, sig in enumerate(signatures)
        ),
        divergent_members=divergent,
    )
