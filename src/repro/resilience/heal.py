"""Checkpoint-free peer healing for hybrid-sharded worlds.

Under HYBRID_SHARD / HYBRID_SHARD_ZERO2 (paper §3.2.2) every flat-param
shard is held bitwise-identically by the ``W/F`` ranks of a replicate
group.  A replacement for a dead rank therefore does not need a
checkpoint at all: any surviving replicate-group peer — any rank whose
per-unit ``shard_index`` map matches the dead rank's — already holds
exactly the model shards, optimizer-state shards and buffers the
replacement must adopt.  Healing copies one rank's state over a
simulated link instead of re-reading (and re-verifying) the whole
world's checkpoint from storage, so recovery cost scales with one
rank's state.

:class:`HealContext` is the controller-side ledger: live workers
deposit a reference to their current sharded payload at every
iteration boundary (zero simulated cost — the bytes already exist on
the peer by construction), and after a failure the controller asks for
a :class:`HealPlan` mapping each dead rank to a surviving donor.  A
``None`` plan (no donor with a matching shard map — FULL_SHARD layouts,
or a whole replicate set lost) signals fallback to checkpoint restore.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "PEER_HEAL_BANDWIDTH",
    "HealContext",
    "HealDeposit",
    "HealPlan",
    "payload_nbytes",
]

GiB = float(1 << 30)

#: Peer-to-peer healing bandwidth (bytes/s): a direct NIC-to-NIC copy
#: between two hosts, faster than the shared checkpoint store's
#: restore path (5 GiB/s read + 10 GiB/s verify for *every* rank).
PEER_HEAL_BANDWIDTH = 25 * GiB


def payload_nbytes(payload: dict) -> int:
    """Total tensor bytes in one rank's checkpoint payload."""
    total = 0
    stack = [payload]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            stack.extend(node.values())
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
        else:
            nbytes = getattr(node, "nbytes", None)
            if isinstance(nbytes, int):
                total += nbytes
    return total


@dataclass
class HealDeposit:
    """One rank's most recent deposited state."""

    rank: int
    tag: int  # iterations completed when deposited
    shard_index: dict  # unit key -> shard chunk index this rank holds
    payload: Optional[dict]  # None once the rank is declared dead
    nbytes: int = 0


@dataclass(frozen=True)
class HealPlan:
    """Donor assignment for a set of dead ranks at a consensus tag."""

    tag: int
    sources: dict  # dead rank -> surviving donor rank
    nbytes: dict = field(default_factory=dict)  # dead rank -> bytes to copy

    def transfer_nbytes(self, rank: int) -> int:
        return int(self.nbytes.get(rank, 0))


class HealContext:
    """Controller-side deposit ledger and heal planner."""

    def __init__(self):
        self._lock = threading.Lock()
        self._deposits: dict[int, HealDeposit] = {}

    def deposit(self, rank: int, tag: int, payload: dict) -> None:
        """Record ``rank``'s live state after ``tag`` completed iterations.

        Zero simulated cost: under hybrid sharding the donor already
        holds these bytes; the deposit is bookkeeping, not a copy.
        """
        with self._lock:
            self._deposits[rank] = HealDeposit(
                rank=rank,
                tag=tag,
                shard_index=dict(payload.get("shard_index", {})),
                payload=payload,
                nbytes=payload_nbytes(payload),
            )

    def invalidate(self, ranks: Iterable[int]) -> None:
        """Drop dead ranks' payloads, keeping their layout metadata.

        The metadata (shard map, last tag) is what lets the planner
        find a matching donor for the replacement rank.
        """
        with self._lock:
            for rank in ranks:
                deposit = self._deposits.get(rank)
                if deposit is not None:
                    deposit.payload = None

    def deposit_for(self, rank: int) -> Optional[HealDeposit]:
        with self._lock:
            return self._deposits.get(rank)

    def clear(self) -> None:
        with self._lock:
            self._deposits.clear()

    def plan(
        self, failed_ranks: Iterable[int], world_size: int
    ) -> Optional[HealPlan]:
        """Map each dead rank to a surviving donor, or ``None``.

        Preconditions for a heal (any miss falls back to checkpoint
        restore):

        - at least one failure, and not the whole world;
        - every survivor has a live deposit, all at one consensus tag
          (SPMD deposits happen at iteration boundaries, so survivors
          of a single failure always agree);
        - every dead rank has recorded layout metadata and at least one
          *surviving* rank with an identical shard map — i.e. a
          replicate-group peer.  FULL_SHARD layouts have unique shard
          maps, so they never plan; losing an entire replicate set
          leaves no donor either.
        """
        failed = sorted(set(failed_ranks))
        if not failed or len(failed) >= world_size:
            return None
        survivors = [r for r in range(world_size) if r not in failed]
        with self._lock:
            deposits = dict(self._deposits)
        live = {
            r: deposits[r]
            for r in survivors
            if r in deposits and deposits[r].payload is not None
        }
        if len(live) != len(survivors):
            return None
        tags = {d.tag for d in live.values()}
        if len(tags) != 1:
            return None
        tag = tags.pop()
        sources: dict[int, int] = {}
        nbytes: dict[int, int] = {}
        for dead in failed:
            meta = deposits.get(dead)
            if meta is None or not meta.shard_index:
                return None
            donor = next(
                (
                    r
                    for r in survivors
                    if live[r].shard_index == meta.shard_index
                ),
                None,
            )
            if donor is None:
                return None
            sources[dead] = donor
            nbytes[dead] = live[donor].nbytes
        return HealPlan(tag=tag, sources=sources, nbytes=nbytes)
