"""Simulated CUDA streams and events.

A :class:`Stream` is a timeline: kernels enqueued on it run in order,
each starting no earlier than (a) the completion of the previous kernel
on the stream, (b) the CPU time at which it was issued and (c) any
event the stream was told to wait on.  An :class:`Event` captures a
stream's completion frontier when recorded and can impose cross-stream
ordering (``wait_event``) or block the CPU (``synchronize``).

These are exactly the semantics FSDP's overlap machinery relies on
(Section 3.3.1): issuing AllGathers on a separate stream bypasses the
sequential ordering of the computation stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cuda import sanitizer as _sanitizer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cuda.device import Device

__all__ = ["Stream", "Event"]


class Stream:
    """One in-order execution timeline on a simulated device."""

    def __init__(self, device: "Device", stream_id: int, name: str = ""):
        self.device = device
        self.stream_id = stream_id
        self.name = name or f"stream{stream_id}"
        self.ready_time = 0.0
        self.kernels_enqueued = 0

    def enqueue(
        self,
        duration: float,
        *,
        issue_time: Optional[float] = None,
        label: str = "kernel",
    ) -> tuple[float, float]:
        """Enqueue a kernel of ``duration`` seconds; returns (start, end).

        ``issue_time`` defaults to the device's current CPU time; the
        kernel cannot start before it was issued.  ``label`` feeds the
        optional device trace hook (see ``repro.perf.timeline``).
        """
        if duration < 0:
            raise ValueError("kernel duration must be non-negative")
        if issue_time is None:
            issue_time = self.device._cpu_time
        start = self.ready_time
        if issue_time > start:
            start = issue_time
        end = start + duration
        self.ready_time = end
        self.kernels_enqueued += 1
        san = _sanitizer._ACTIVE
        if san is not None:
            san.on_kernel(self, label)
        hook = self.device.trace_hook
        if hook is not None:
            hook(label, self.name, start, end)
        return start, end

    def wait_event(self, event: "Event") -> None:
        """Future work on this stream waits for ``event`` (GPU-side)."""
        if event.time is None:
            raise RuntimeError("cannot wait on an unrecorded event")
        self.ready_time = max(self.ready_time, event.time)
        san = _sanitizer.active()
        if san is not None:
            san.on_wait_event(self, event)

    def wait_stream(self, other: "Stream") -> None:
        """Future work on this stream waits for all current work on ``other``."""
        self.ready_time = max(self.ready_time, other.ready_time)
        san = _sanitizer.active()
        if san is not None:
            san.on_wait_stream(self, other)

    def record_event(self, event: Optional["Event"] = None) -> "Event":
        """Record an event at this stream's current completion frontier."""
        if event is None:
            event = Event(self.device)
        event.time = self.ready_time
        san = _sanitizer.active()
        if san is not None:
            san.on_record_event(self, event)
        return event

    def synchronize(self) -> None:
        """Block the CPU until all work enqueued on this stream retires."""
        self.device.advance_cpu_to(self.ready_time)
        san = _sanitizer.active()
        if san is not None:
            san.on_host_sync_stream(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stream({self.name}, device={self.device.index}, ready={self.ready_time:.6f})"


class Event:
    """A recorded point on a stream's timeline."""

    def __init__(self, device: "Device"):
        self.device = device
        self.time: Optional[float] = None

    def query(self) -> bool:
        """True if the event has completed relative to the CPU clock."""
        if self.time is None:
            return True
        done = self.time <= self.device.cpu_time()
        if done:
            # cudaEventQuery success is a happens-before edge: the CPU
            # (and anything it launches next) observed the event retire.
            san = _sanitizer.active()
            if san is not None:
                san.on_host_sync_event(self)
        return done

    def synchronize(self) -> None:
        """Block the CPU until the event completes."""
        if self.time is not None:
            self.device.advance_cpu_to(self.time)
            san = _sanitizer.active()
            if san is not None:
                san.on_host_sync_event(self)

    def elapsed_time(self, other: "Event") -> float:
        """Seconds between this event and ``other`` (CUDA returns ms)."""
        if self.time is None or other.time is None:
            raise RuntimeError("both events must be recorded")
        return other.time - self.time
