"""Simulated devices.

Three device kinds exist:

- ``"sim_gpu"``: a fully simulated accelerator with streams, a CPU
  clock, a caching allocator and cost models — one per rank;
- ``"cpu"``: host memory; unbounded, no timing (used for offload and
  the init-on-CPU path of Section 4.1);
- ``"meta"``: the "fake" device of deferred initialization
  (Section 3.1) — tensors carry shape/dtype but no storage.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.cuda import sanitizer
from repro.cuda.allocator import Block, CachingAllocator
from repro.cuda.stream import Event, Stream
from repro.errors import DeviceError
from repro.hw.kernel_model import KernelCost, KernelCostModel
from repro.hw.specs import A100_80GB, GpuSpec

__all__ = ["Device", "cpu_device", "meta_device"]

_device_counter = itertools.count()


class _StreamGuard:
    """Plain-class context manager for :meth:`Device.stream`.

    Entered on every FSDP unshard/reshard; avoids the generator frame a
    ``contextlib`` manager would allocate per use.
    """

    __slots__ = ("_device", "_stream", "_previous")

    def __init__(self, device: "Device", stream: "Stream"):
        self._device = device
        self._stream = stream
        self._previous = None

    def __enter__(self) -> "Stream":
        self._previous = self._device.current_stream
        self._device.current_stream = self._stream
        return self._stream

    def __exit__(self, *exc_info) -> None:
        self._device.current_stream = self._previous


class _CoalesceGuard:
    """Plain-class context manager for :meth:`Device.coalesce_kernels`."""

    __slots__ = ("_device", "_label", "_acc")

    def __init__(self, device: "Device", label: str):
        self._device = device
        self._label = label
        self._acc = None

    def __enter__(self) -> None:
        device = self._device
        if not device.is_sim_gpu or device._coalesce is not None:
            return
        self._acc = device._coalesce = {}

    def __exit__(self, *exc_info) -> None:
        acc = self._acc
        if acc is None:
            return
        device = self._device
        device._coalesce = None
        self._acc = None
        for stream, flops, bytes_moved, dtype, reads, writes, blocks in acc.values():
            if not (flops or bytes_moved or reads or writes or blocks):
                continue
            device.launch(
                KernelCost(flops=flops, bytes_moved=bytes_moved),
                dtype,
                stream=stream,
                blocks=tuple(blocks.values()),
                reads=tuple(reads.values()),
                writes=tuple(writes.values()),
                label=self._label,
            )


class Device:
    """A simulated execution device."""

    def __init__(
        self,
        kind: str = "sim_gpu",
        *,
        index: Optional[int] = None,
        spec: GpuSpec = A100_80GB,
        capacity: Optional[int] = None,
    ):
        if kind not in ("sim_gpu", "cpu", "meta"):
            raise DeviceError(f"unknown device kind: {kind!r}")
        self.kind = kind
        # Plain attributes (not properties): consulted on every op
        # dispatch and storage allocation.
        self.is_sim_gpu = kind == "sim_gpu"
        self.is_meta = kind == "meta"
        self.is_cpu = kind == "cpu"
        self.index = next(_device_counter) if index is None else index
        self.spec = spec
        # When False, tensors on this device carry no real data: shapes,
        # kernel costs and allocator traffic still flow (abstract mode
        # used for paper-scale models).  Meta devices never materialize.
        self.materialize_data = kind != "meta"
        self._cpu_time = 0.0
        # Cumulative FLOPs of all kernels launched (drives TFLOPS-per-GPU
        # metrics; includes activation-checkpoint recomputation, matching
        # how hardware utilization is reported in the paper).
        self.flops_total = 0.0
        self.kernels_launched = 0
        # Optional tracing callback: (label, stream_name, start, end).
        self.trace_hook = None
        # Optional instant-event callback: (label, time) — fault
        # injections, watchdog aborts and recovery milestones land here
        # (see ``repro.perf.timeline.trace_device``).
        self.mark_hook = None
        # Installed by ``repro.distributed`` when a fault schedule is
        # active; process groups consult it on every collective.
        self.fault_injector = None
        # Active kernel-coalescing accumulator (``coalesce_kernels``);
        # ``None`` outside a coalescing region.
        self._coalesce = None
        # Installed by ``repro.profiler.ProfilerSession``; FSDP runtime
        # and process groups consult it for scope/stat attribution.
        self.profiler = None
        # Ring buffer of issued/completed collectives (may be shared
        # across ranks); process groups record into it when present.
        self.flight_recorder = None
        # Shared ``repro.resilience.CoordinatedAbort`` latch (one per
        # world); process groups consult it pre-launch and declare into
        # it on watchdog abort.  ``None`` = legacy uncoordinated world.
        self.abort = None
        # When True, the threaded backend piggybacks a collective
        # signature on every rendezvous round and cross-checks it
        # before combining (the desync detector).
        self.desync_checker = None
        self._next_stream_id = 0
        self.streams: list[Stream] = []
        if kind == "sim_gpu":
            self.kernel_model = KernelCostModel(spec)
            self.allocator = CachingAllocator(self, capacity or spec.memory_bytes)
            self.default_stream = self.new_stream("default")
            self.current_stream = self.default_stream
        else:
            self.kernel_model = None
            self.allocator = None
            self.default_stream = None
            self.current_stream = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self.kind == "sim_gpu":
            return f"device(sim_gpu:{self.index})"
        return f"device({self.kind})"

    # ------------------------------------------------------------------
    # Streams and clocks
    # ------------------------------------------------------------------
    def new_stream(self, name: str = "") -> Stream:
        self._require_sim("streams")
        stream = Stream(self, self._next_stream_id, name)
        self._next_stream_id += 1
        self.streams.append(stream)
        return stream

    def cpu_time(self) -> float:
        return self._cpu_time

    def emit_mark(self, label: str) -> None:
        """Emit an instant event at the current CPU time (if traced)."""
        if self.mark_hook is not None:
            self.mark_hook(label, self._cpu_time)

    def consume_cpu(self, seconds: float) -> None:
        """Advance the CPU clock by doing ``seconds`` of host work."""
        if seconds < 0:
            raise ValueError("cpu time must advance monotonically")
        self._cpu_time += seconds

    def advance_cpu_to(self, time: float) -> None:
        """Block the CPU until simulated wall-clock ``time``."""
        if time > self._cpu_time:
            self._cpu_time = time

    def synchronize(self) -> None:
        """CPU waits for all streams (``torch.cuda.synchronize``)."""
        if not self.is_sim_gpu:
            return
        for stream in self.streams:
            self.advance_cpu_to(stream.ready_time)
        san = sanitizer.active()
        if san is not None:
            san.on_device_sync(self)

    def now(self) -> float:
        """The furthest point any work on this device reaches."""
        if not self.is_sim_gpu:
            return self._cpu_time
        frontier = self._cpu_time
        for stream in self.streams:
            frontier = max(frontier, stream.ready_time)
        return frontier

    # ------------------------------------------------------------------
    # Kernel launches
    # ------------------------------------------------------------------
    def launch(
        self,
        cost: KernelCost,
        dtype,
        *,
        stream: Optional[Stream] = None,
        blocks: tuple[Block, ...] = (),
        reads: tuple = (),
        writes: tuple = (),
        label: str = "kernel",
    ) -> tuple[float, float]:
        """Issue one kernel: consume CPU launch time, enqueue on stream.

        ``blocks`` are the storage blocks the kernel touches; their
        cross-stream usage is recorded for the allocator's reuse gate.
        ``reads``/``writes`` name the storages the kernel accesses (for
        the stream-order sanitizer); their blocks are recorded too, so
        callers pass either form.
        """
        kernel_model = self.kernel_model
        if kernel_model is None:
            self._require_sim("kernels")
        if stream is None:
            stream = self.current_stream
        if self._coalesce is not None and not cost.is_matmul:
            entry = self._coalesce.get(id(stream))
            if entry is None:
                entry = self._coalesce[id(stream)] = [stream, 0.0, 0.0, dtype, {}, {}, {}]
            entry[1] += cost.flops
            entry[2] += cost.bytes_moved
            for storage in reads:
                entry[4][id(storage)] = storage
            for storage in writes:
                entry[5][id(storage)] = storage
            for block in blocks:
                entry[6][id(block)] = block
            return self._cpu_time, self._cpu_time
        # Hottest function in the simulator: inline consume_cpu (the
        # overhead is a positive constant) and touch attributes once.
        self._cpu_time += self.spec.kernel_launch_cpu
        duration = kernel_model.duration(cost, dtype)
        self.flops_total += cost.flops
        self.kernels_launched += 1
        start, end = stream.enqueue(duration, label=label)
        allocator = self.allocator
        seen = None
        if blocks:
            seen = set()
            for block in blocks:
                allocator.record_use(block, stream, end)
                seen.add(id(block))
        if reads or writes:
            for storage in reads:
                block = storage.block
                if block is not None and storage.device is self and (seen is None or id(block) not in seen):
                    allocator.record_use(block, stream, end)
            for storage in writes:
                block = storage.block
                if block is not None and storage.device is self and (seen is None or id(block) not in seen):
                    allocator.record_use(block, stream, end)
            san = sanitizer._ACTIVE
            if san is not None:
                san.on_access(self, stream, reads=reads, writes=writes)
        return start, end

    def coalesce_kernels(self, label: str = "multi_tensor"):
        """Fuse every elementwise kernel launched inside into one launch.

        The simulator's ``multi_tensor_apply``: eager math still runs
        per op (data effects are identical, bitwise), but instead of
        paying launch overhead per tensor, the region issues a single
        kernel per stream whose cost is the sum of the accumulated
        FLOPs and HBM traffic and whose read/write sets are the unions.
        Matmuls are never coalesced — they keep their tensor-core lane
        and launch immediately.  Regions do not nest; an inner region
        is a no-op inside an outer one.
        """
        return _CoalesceGuard(self, label)

    def new_event(self) -> Event:
        self._require_sim("events")
        return Event(self)

    def stream(self, stream: Stream):
        """Context manager making ``stream`` the current stream.

        Allocations and kernels issued inside run on ``stream`` — how
        FSDP routes AllGather destinations to the producer stream
        (Section 3.4).
        """
        return _StreamGuard(self, stream)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def memory_stats(self) -> dict[str, int]:
        self._require_sim("memory stats")
        return self.allocator.memory_stats()

    def reset_peak_memory_stats(self) -> None:
        self._require_sim("memory stats")
        self.allocator.reset_peak_stats()

    def _require_sim(self, what: str) -> None:
        if not self.is_sim_gpu:
            raise DeviceError(f"{what} are only available on sim_gpu devices, not {self.kind}")


_CPU = Device("cpu", index=-1)
_META = Device("meta", index=-2)


def cpu_device() -> Device:
    """The process-wide host device."""
    return _CPU


def meta_device() -> Device:
    """The process-wide fake device used by deferred initialization."""
    return _META
