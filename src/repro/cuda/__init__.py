"""Simulated CUDA device runtime.

This package replaces real CUDA devices with a discrete-event
simulation that preserves the scheduling semantics FSDP depends on:

- :class:`~repro.cuda.stream.Stream` timelines with sequential ordering
  of enqueued kernels and cross-stream edges via
  :class:`~repro.cuda.stream.Event`;
- a simulated CPU-thread clock that *issues* work and can run ahead of
  GPU execution (the dynamic behind Section 3.4's rate limiter);
- a :class:`~repro.cuda.allocator.CachingAllocator` implementing
  per-stream block pools, block splitting/coalescing, cross-stream
  reuse gating, cudaMalloc retries and ``memory_stats()`` including
  ``num_alloc_retries``.

Durations come from :mod:`repro.hw` cost models; no real GPU is used.
"""

from repro.cuda import sanitizer
from repro.cuda.allocator import CachingAllocator, MemoryStats
from repro.cuda.device import Device, cpu_device, meta_device
from repro.cuda.sanitizer import StreamOrderSanitizer
from repro.cuda.stream import Event, Stream

__all__ = [
    "Device",
    "Stream",
    "Event",
    "CachingAllocator",
    "MemoryStats",
    "StreamOrderSanitizer",
    "sanitizer",
    "cpu_device",
    "meta_device",
]
