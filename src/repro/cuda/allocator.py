"""Simulated CUDA caching allocator.

Re-implements the decision procedure of PyTorch's CUDA caching
allocator at the fidelity Section 3.4 of the paper requires:

- blocks are carved out of ``cudaMalloc``-ed *segments* and cached in
  **per-stream pools**; a block freed by the CPU returns to the pool of
  its allocation stream;
- a cached block may always be reused by **its own stream** (stream
  ordering makes that safe), but if the block was used by a *different*
  stream (``record_stream``), reuse must wait until that use has
  actually retired on the GPU relative to the CPU clock — this is the
  producer/consumer-stream hazard that over-allocates the communication
  stream's pool when the CPU runs ahead;
- when no cached block fits and ``cudaMalloc`` would exceed device
  capacity, the allocator performs a **cudaMalloc retry**: it
  synchronizes the device, releases all cached segments and tries
  again, at a large simulated cost (``num_alloc_retries`` counts these,
  exactly like ``torch.cuda.memory_stats()``);
- statistics track current and peak ``allocated`` (live tensor bytes),
  ``active`` (live plus freed-but-not-yet-reusable bytes) and
  ``reserved`` (total segment bytes), the three series of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cuda import sanitizer
from repro.errors import OutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cuda.device import Device
    from repro.cuda.stream import Stream

__all__ = ["Block", "Segment", "CachingAllocator", "MemoryStats"]

_ALLOC_ROUND = 512
_SMALL_BLOCK_LIMIT = 1 << 20  # 1 MiB
_SMALL_SEGMENT_SIZE = 2 << 20  # 2 MiB
_LARGE_SEGMENT_MIN = 20 << 20  # 20 MiB
# Only split a block when the remainder is worth keeping.
_SPLIT_REMAINDER_MIN = 512
# Simulated cost of raw driver calls.  cudaMalloc pays a fixed call
# overhead plus page-mapping time proportional to the segment size;
# cudaFree (during a retry) synchronizes the device and pays per
# released segment.  These are what make cudaMalloc retries "greatly
# degrade training throughput" (Section 3.4): after a retry the cache
# is empty, so every subsequent large allocation stalls the CPU in the
# driver while the GPU pipeline drains and restarts.
_CUDA_MALLOC_CALL_COST = 50e-6
_CUDA_MALLOC_MAPPING_BYTES_PER_S = 30e9
_CUDA_FREE_PER_SEGMENT_COST = 300e-6


def _round_size(nbytes: int) -> int:
    if nbytes <= 0:
        return _ALLOC_ROUND
    return (nbytes + _ALLOC_ROUND - 1) // _ALLOC_ROUND * _ALLOC_ROUND


@dataclass
class Segment:
    """One cudaMalloc-ed region, carved into blocks."""

    segment_id: int
    size: int
    stream_id: int
    is_small: bool


class Block:
    """A contiguous sub-range of a segment.

    Attributes:
        requested: bytes the tensor asked for (allocated-stat units).
        size: rounded bytes the block occupies in its segment.
        reuse_ready_time: latest GPU completion time of kernels from
            *other* streams that used this block; gates cross-stream
            reuse.
    """

    __slots__ = (
        "segment",
        "offset",
        "size",
        "requested",
        "allocated",
        "prev",
        "next",
        "reuse_ready_time",
        "__weakref__",
    )

    def __init__(self, segment: Segment, offset: int, size: int):
        self.segment = segment
        self.offset = offset
        self.size = size
        self.requested = 0
        self.allocated = False
        self.prev: Optional[Block] = None
        self.next: Optional[Block] = None
        self.reuse_ready_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alloc" if self.allocated else "free"
        return f"Block(seg={self.segment.segment_id}, off={self.offset}, size={self.size}, {state})"


@dataclass
class MemoryStats:
    """Counters mirroring ``torch.cuda.memory_stats()`` keys we need."""

    allocated_bytes: int = 0
    allocated_peak: int = 0
    active_bytes: int = 0
    active_peak: int = 0
    reserved_bytes: int = 0
    reserved_peak: int = 0
    num_alloc_retries: int = 0
    num_ooms: int = 0
    num_cuda_mallocs: int = 0
    num_block_reuses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "allocated_bytes.all.current": self.allocated_bytes,
            "allocated_bytes.all.peak": self.allocated_peak,
            "active_bytes.all.current": self.active_bytes,
            "active_bytes.all.peak": self.active_peak,
            "reserved_bytes.all.current": self.reserved_bytes,
            "reserved_bytes.all.peak": self.reserved_peak,
            "num_alloc_retries": self.num_alloc_retries,
            "num_ooms": self.num_ooms,
            "num_device_alloc": self.num_cuda_mallocs,
            "num_block_reuses": self.num_block_reuses,
        }


class CachingAllocator:
    """Per-device caching allocator over simulated memory."""

    def __init__(self, device: "Device", capacity: int):
        self.device = device
        self.capacity = capacity
        self.stats = MemoryStats()
        self._pools: dict[int, list[Block]] = {}
        # Pooled blocks with a nonzero cross-stream retire time, by id.
        # ``active`` = allocated + pooled-but-unretired bytes; almost all
        # pooled blocks have ``reuse_ready_time == 0``, so tracking the
        # exceptions keeps the stats refresh O(pending) instead of
        # O(all cached blocks) on every allocate/free.
        self._pending_reuse: dict[int, Block] = {}
        # Live segments by id (registered at cudaMalloc, dropped at
        # release) — backs the per-stream reserved breakdown.
        self._segments: dict[int, Segment] = {}
        self._next_segment_id = 0
        # Optional profiler callback: (allocator, cpu_time, reason),
        # invoked after every state-changing allocator event.
        self.sample_hook = None
        # Bytes claimed by foreign allocations (fault injection's
        # transient OOM pressure); subtracted from usable capacity.
        self.pressure_bytes = 0

    # ------------------------------------------------------------------
    # External memory pressure (fault-injection hook)
    # ------------------------------------------------------------------
    def set_pressure(self, nbytes: int) -> None:
        """Pretend ``nbytes`` of device memory belong to someone else.

        Models a co-located process or fragmentation spike: cudaMalloc
        sees a smaller device, so allocations that used to fit now take
        the retry path (``num_alloc_retries``) or OOM.  Setting 0
        releases the pressure.
        """
        if nbytes < 0:
            raise ValueError("pressure must be non-negative")
        self.pressure_bytes = nbytes
        self._sample("pressure")

    @property
    def usable_capacity(self) -> int:
        return max(self.capacity - self.pressure_bytes, 0)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int, stream: "Stream") -> Block:
        """Allocate ``nbytes`` for use on ``stream``.

        Follows the caching-allocator procedure: try the stream's pool,
        then cudaMalloc, then retry after releasing all cached blocks,
        then raise :class:`OutOfMemoryError`.
        """
        size = _round_size(nbytes)
        block = self._find_pooled(size, stream)
        if block is None:
            block = self._try_cuda_malloc(size, stream)
        if block is None:
            self._retry_free_cached(stream)
            block = self._find_pooled(size, stream)
            if block is None:
                block = self._try_cuda_malloc(size, stream)
        if block is None:
            self.stats.num_ooms += 1
            raise OutOfMemoryError(
                self.device, nbytes, self.capacity, self.stats.reserved_bytes
            )
        block.allocated = True
        block.requested = nbytes
        stats = self.stats
        stats.allocated_bytes += nbytes
        if stats.allocated_bytes > stats.allocated_peak:
            stats.allocated_peak = stats.allocated_bytes
        self._bump_active()
        san = sanitizer._ACTIVE
        if san is not None:
            san.on_block_alloc(self.device, stream, block)
        self._sample("alloc")
        return block

    def free(self, block: Block) -> None:
        """Return a block to its stream's pool (CPU-side free)."""
        if not block.allocated:
            return
        block.allocated = False
        self.stats.allocated_bytes -= block.requested
        block.requested = 0
        merged = self._coalesce(block)
        self._pools.setdefault(merged.segment.stream_id, []).append(merged)
        if merged.reuse_ready_time > 0.0:
            self._pending_reuse[id(merged)] = merged
        self._bump_active()
        self._sample("free")

    def record_use(self, block: Block, stream: "Stream", end_time: float) -> None:
        """Note that a kernel on ``stream`` uses ``block`` until ``end_time``.

        Uses from the block's own allocation stream are ordered by the
        stream and do not delay reuse; uses from other streams do
        (``record_stream`` semantics).
        """
        if stream.stream_id != block.segment.stream_id:
            block.reuse_ready_time = max(block.reuse_ready_time, end_time)

    def memory_stats(self) -> dict[str, int]:
        self._refresh_active()
        return self.stats.as_dict()

    def reset_peak_stats(self) -> None:
        self._refresh_active()
        s = self.stats
        s.allocated_peak = s.allocated_bytes
        s.active_peak = s.active_bytes
        s.reserved_peak = s.reserved_bytes

    def empty_cache(self) -> None:
        """Release all reusable cached segments (``torch.cuda.empty_cache``)."""
        self._release_free_segments(require_retired=True)

    # ------------------------------------------------------------------
    # Profiler queries
    # ------------------------------------------------------------------
    def reserved_bytes_by_stream(self) -> dict[int, int]:
        """Segment bytes per allocation stream; sums to reserved_bytes."""
        out: dict[int, int] = {}
        for segment in self._segments.values():
            out[segment.stream_id] = out.get(segment.stream_id, 0) + segment.size
        return out

    def pool_bytes_by_stream(self) -> dict[int, int]:
        """Free cached bytes per stream pool."""
        return {
            stream_id: sum(block.size for block in pool)
            for stream_id, pool in self._pools.items()
            if pool
        }

    def _sample(self, reason: str) -> None:
        if self.sample_hook is not None:
            self._refresh_active()
            self.sample_hook(self, self.device.cpu_time(), reason)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find_pooled(self, size: int, stream: "Stream") -> Optional[Block]:
        pool = self._pools.get(stream.stream_id)
        if not pool:
            return None
        now = self.device._cpu_time
        best: Optional[Block] = None
        best_index = -1
        best_size = 0
        for index, block in enumerate(pool):
            block_size = block.size
            if block_size < size or (best is not None and block_size >= best_size):
                continue
            if block.reuse_ready_time > now:
                # Cross-stream use has not retired yet; unsafe to reuse.
                continue
            best, best_index, best_size = block, index, block_size
            if block_size == size:
                # Exact fit: nothing later in the pool can beat it, and
                # ties resolve to the earliest pooled block either way.
                break
        if best is None:
            return None
        pool.pop(best_index)
        self._pending_reuse.pop(id(best), None)
        self.stats.num_block_reuses += 1
        self._maybe_split(best, size, stream)
        return best

    def _maybe_split(self, block: Block, size: int, stream: "Stream") -> None:
        remainder = block.size - size
        should_split = (
            remainder >= _SPLIT_REMAINDER_MIN
            and (block.segment.is_small or remainder >= _SMALL_BLOCK_LIMIT)
        )
        if not should_split:
            return
        rest = Block(block.segment, block.offset + size, remainder)
        rest.reuse_ready_time = block.reuse_ready_time
        rest.prev = block
        rest.next = block.next
        if block.next is not None:
            block.next.prev = rest
        block.next = rest
        block.size = size
        self._pools.setdefault(block.segment.stream_id, []).append(rest)
        if rest.reuse_ready_time > 0.0:
            self._pending_reuse[id(rest)] = rest

    def _try_cuda_malloc(self, size: int, stream: "Stream") -> Optional[Block]:
        is_small = size <= _SMALL_BLOCK_LIMIT
        if is_small:
            segment_size = _SMALL_SEGMENT_SIZE
        elif size < _LARGE_SEGMENT_MIN:
            segment_size = _LARGE_SEGMENT_MIN
        else:
            segment_size = size
        if self.stats.reserved_bytes + segment_size > self.usable_capacity:
            # Fall back to an exact-size segment before giving up.
            segment_size = size
            if self.stats.reserved_bytes + segment_size > self.usable_capacity:
                return None
        segment = Segment(self._next_segment_id, segment_size, stream.stream_id, is_small)
        self._segments[segment.segment_id] = segment
        self._next_segment_id += 1
        self.stats.reserved_bytes += segment_size
        self.stats.reserved_peak = max(self.stats.reserved_peak, self.stats.reserved_bytes)
        self.stats.num_cuda_mallocs += 1
        self.device.consume_cpu(
            _CUDA_MALLOC_CALL_COST + segment_size / _CUDA_MALLOC_MAPPING_BYTES_PER_S
        )
        block = Block(segment, 0, segment_size)
        self._maybe_split(block, size, stream)
        return block

    def _retry_free_cached(self, stream: "Stream") -> None:
        """The cudaMalloc-retry path: device sync + release cached segments."""
        self.stats.num_alloc_retries += 1
        # Synchronizing the device lets every pending cross-stream use
        # retire, making all cached blocks releasable — and serializes
        # the pipeline: all subsequent kernels start after this point.
        self.device.synchronize()
        # The sync advanced the CPU clock past every recorded use, so the
        # per-stream retire state is provably satisfied: releasing with
        # require_retired=True frees exactly the same segments while
        # keeping the invariant that a segment is never unmapped under a
        # still-running cross-stream kernel.
        released_segments = self._release_free_segments(require_retired=True)
        # cudaFree is paid per driver call, i.e. per released segment —
        # not per 20 MiB of released bytes (a retry that frees many small
        # segments stalls the CPU for each of them; one that frees
        # nothing pays only the sync).
        self.device.consume_cpu(released_segments * _CUDA_FREE_PER_SEGMENT_COST)

    def _release_free_segments(self, *, require_retired: bool) -> int:
        """Unmap whole free segments; returns how many were released."""
        now = self.device.cpu_time()
        released = 0
        for stream_id, pool in list(self._pools.items()):
            kept: list[Block] = []
            for block in pool:
                whole_segment_free = (
                    block.prev is None and block.next is None and block.offset == 0
                )
                retired = block.reuse_ready_time <= now
                if whole_segment_free and (retired or not require_retired):
                    self.stats.reserved_bytes -= block.segment.size
                    self._segments.pop(block.segment.segment_id, None)
                    self._pending_reuse.pop(id(block), None)
                    released += 1
                else:
                    kept.append(block)
            self._pools[stream_id] = kept
        # Released blocks may have counted toward active (pending
        # cross-stream retirement); recompute so active <= reserved holds
        # without waiting for the next allocate/free.
        self._refresh_active()
        if released:
            self._sample("release")
        return released

    def _coalesce(self, block: Block) -> Block:
        """Merge ``block`` with free neighbors; returns the merged block.

        Free neighbors are always resident in the pool, so merging
        removes them from it; the caller re-inserts the result.
        """
        pool = self._pools.setdefault(block.segment.stream_id, [])
        neighbor = block.prev
        if neighbor is not None and not neighbor.allocated:
            pool.remove(neighbor)
            self._pending_reuse.pop(id(neighbor), None)
            neighbor.next = block.next
            if block.next is not None:
                block.next.prev = neighbor
            neighbor.size += block.size
            neighbor.reuse_ready_time = max(neighbor.reuse_ready_time, block.reuse_ready_time)
            block = neighbor
        neighbor = block.next
        if neighbor is not None and not neighbor.allocated:
            pool.remove(neighbor)
            self._pending_reuse.pop(id(neighbor), None)
            block.next = neighbor.next
            if neighbor.next is not None:
                neighbor.next.prev = block
            block.size += neighbor.size
            block.reuse_ready_time = max(block.reuse_ready_time, neighbor.reuse_ready_time)
        return block

    def _bump_active(self) -> None:
        self._refresh_active()
        stats = self.stats
        if stats.active_bytes > stats.active_peak:
            stats.active_peak = stats.active_bytes

    def _refresh_active(self) -> None:
        stats = self.stats
        pending_reuse = self._pending_reuse
        if not pending_reuse:
            stats.active_bytes = stats.allocated_bytes
            return
        now = self.device._cpu_time
        pending = 0
        retired = None
        for key, block in pending_reuse.items():
            if block.allocated or block.reuse_ready_time <= now:
                if retired is None:
                    retired = [key]
                else:
                    retired.append(key)
            else:
                pending += block.size
        if retired is not None:
            for key in retired:
                del pending_reuse[key]
        stats.active_bytes = stats.allocated_bytes + pending
