"""CSAN-style stream-order sanitizer for the simulated CUDA runtime.

The discrete-event runtime reproduces the scheduling semantics FSDP
depends on, but (like real CUDA) it does not *check* them: a missing
``wait_event`` silently yields a plausible timeline over corrupted
data.  This module is the checker — a dynamic happens-before analysis
in the spirit of PyTorch's CUDA Sanitizer (CSAN):

- every kernel launch (including collectives) reports which storages it
  reads and writes on which stream;
- the sanitizer maintains per-stream **vector clocks**: an entry
  ``clock[S] = n`` means "everything up to the n-th kernel enqueued on
  stream S is guaranteed to have completed before any future kernel on
  this stream".  Happens-before edges come from ``wait_event`` /
  ``wait_stream``, from host-side synchronization (stream / event /
  device ``synchronize`` and *successful* ``Event.query()`` — the
  cudaEventQuery pattern the caching allocator itself relies on), which
  joins into a per-device **host clock** merged into every subsequently
  launched kernel;
- three violation families raise a typed
  :class:`~repro.errors.StreamOrderViolation`:

  (a) **data races** — a storage is read (or written) while its last
      writer on another stream is not ordered before the access
      (``read-after-write`` / ``write-after-write``), or written while
      an unordered reader exists (``write-after-read``); kernels
      touching a released storage report ``use-after-free``;
  (b) **allocator hazards** — the allocator hands out a block whose
      cross-stream uses have neither retired on the simulated clock nor
      been ordered before the allocating stream
      (``unretired-block-reuse``), shadowing ``record_stream``
      semantics independently of the allocator's own bookkeeping;
  (c) **exec-order divergence** — FSDP units unshard in a different
      order than the warmup iteration recorded
      (:class:`~repro.errors.ExecOrderViolation`, raised by
      ``repro.fsdp.exec_order.ExecOrderValidator`` when the sanitizer
      is enabled).

Enable with :func:`enable` (or the ``REPRO_SANITIZER=1`` environment
variable honoured by the test suite's fixture).  Violations also emit
``sanitizer:<kind>`` instant marks on the device, which export as
instant events in Chrome traces (``repro.perf.timeline``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence
from weakref import WeakKeyDictionary

from repro.errors import ExecOrderViolation, StreamOrderViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.cuda.device import Device
    from repro.cuda.stream import Event, Stream
    from repro.storage import Storage

__all__ = [
    "LaunchRecord",
    "StreamOrderSanitizer",
    "StreamOrderViolation",
    "ExecOrderViolation",
    "active",
    "is_enabled",
    "enable",
    "disable",
    "reset",
    "enabled",
    "set_launch_site",
    "launch_site",
]

_tls = threading.local()


@dataclass(frozen=True)
class LaunchRecord:
    """One kernel launch, as remembered by the sanitizer."""

    stream_name: str
    stream_key: int
    seq: int
    label: str
    site: Optional[str] = None

    def describe(self) -> str:
        where = f" during {self.site}" if self.site else ""
        return f"{self.label!r} (kernel #{self.seq} on stream {self.stream_name!r}{where})"


class _StreamState:
    __slots__ = ("key", "seq", "clock", "clock_shared", "last")

    def __init__(self, key: int):
        self.key = key
        #: Count of kernels enqueued on this stream so far.
        self.seq = 0
        #: Vector clock: other-stream kernels ordered before future work here.
        self.clock: dict[int, int] = {}
        #: True while ``clock`` is aliased by a recorded event's snapshot
        #: (copy-on-write: the dict is copied on the next update instead
        #: of on every ``record_event``).
        self.clock_shared = False
        #: The most recently enqueued kernel (the one access checks attribute).
        self.last: Optional[LaunchRecord] = None

    def advance(self, key: int, seq: int) -> None:
        """Raise ``clock[key]`` to ``seq``, unsharing first if snapshot."""
        clock = self.clock
        if clock.get(key, 0) < seq:
            if self.clock_shared:
                clock = self.clock = dict(clock)
                self.clock_shared = False
            clock[key] = seq

    def merge(self, other: dict[int, int]) -> None:
        """Merge another clock into this one (copy-on-write aware)."""
        clock = self.clock
        shared = self.clock_shared
        for key, seq in other.items():
            if clock.get(key, 0) < seq:
                if shared:
                    clock = self.clock = dict(clock)
                    self.clock_shared = shared = False
                clock[key] = seq


class _StorageShadow:
    __slots__ = ("block", "generation", "last_write", "readers")

    def __init__(self, block, generation=0):
        #: The allocator block backing the storage when last seen, plus
        #: that block's allocation generation; a release/reallocate
        #: cycle starts a fresh shadow (new lifetime) even when the
        #: allocator hands back the same ``Block`` object.
        self.block = block
        self.generation = generation
        self.last_write: Optional[LaunchRecord] = None
        #: Unordered readers since the last write, per stream key.
        self.readers: dict[int, LaunchRecord] = {}


def _merge(into: dict[int, int], other: dict[int, int]) -> None:
    for key, seq in other.items():
        if into.get(key, 0) < seq:
            into[key] = seq


class StreamOrderSanitizer:
    """Happens-before tracker over streams, events and the allocator.

    All state is keyed by object identity through weak references, so
    tracking never extends the lifetime of streams, events, storages or
    allocator blocks.  A single instance may observe many devices (the
    threaded backend runs ranks as threads, each with its own device);
    an internal lock makes the handlers thread-safe.
    """

    def __init__(self, *, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.violations: list[StreamOrderViolation] = []
        self._lock = threading.RLock()
        self._streams: WeakKeyDictionary = WeakKeyDictionary()  # Stream -> _StreamState
        self._events: WeakKeyDictionary = WeakKeyDictionary()  # Event -> clock
        self._hosts: WeakKeyDictionary = WeakKeyDictionary()  # Device -> clock
        self._storages: WeakKeyDictionary = WeakKeyDictionary()  # Storage -> _StorageShadow
        self._blocks: WeakKeyDictionary = WeakKeyDictionary()  # Block -> {key: (seq, end, rec)}
        self._block_gen: WeakKeyDictionary = WeakKeyDictionary()  # Block -> alloc count
        self._next_key = 0

    # ------------------------------------------------------------------
    # Stream / event hooks (wired from repro.cuda.stream / device)
    # ------------------------------------------------------------------
    def _state(self, stream: "Stream") -> _StreamState:
        state = self._streams.get(stream)
        if state is None:
            self._next_key += 1
            state = _StreamState(self._next_key)
            self._streams[stream] = state
        return state

    def on_kernel(self, stream: "Stream", label: str) -> None:
        """A kernel was enqueued on ``stream`` (any label, any origin)."""
        with self._lock:
            state = self._state(stream)
            state.seq += 1
            host = self._hosts.get(stream.device)
            if host:
                # The launching CPU thread already observed everything in
                # the host clock; the new kernel inherits that ordering.
                state.merge(host)
            state.last = LaunchRecord(
                stream.name, state.key, state.seq, label, getattr(_tls, "site", None)
            )

    def on_record_event(self, stream: "Stream", event: "Event") -> None:
        # An event snapshot is the stream's clock plus its own frontier.
        # Instead of copying the dict per event (O(streams) each, which
        # made long soaks quadratic), the snapshot aliases the live dict
        # and the stream copies it lazily on its next clock update.
        with self._lock:
            state = self._state(stream)
            state.clock_shared = True
            self._events[event] = (state.clock, state.key, state.seq)

    def _event_clock(self, event: "Event") -> tuple[dict[int, int], Optional[int], int]:
        clock = self._events.get(event)
        if clock is None:
            # Recorded before the sanitizer was enabled: conservatively
            # treat it as covering everything enqueued so far on its
            # device (avoids false positives at the enable boundary).
            base = {}
            for stream in getattr(event.device, "streams", ()):
                state = self._streams.get(stream)
                if state is not None:
                    base[state.key] = state.seq
            clock = (base, None, 0)
        return clock

    def on_wait_event(self, stream: "Stream", event: "Event") -> None:
        with self._lock:
            state = self._state(stream)
            base, key, seq = self._event_clock(event)
            state.merge(base)
            if key is not None:
                state.advance(key, seq)

    def on_wait_stream(self, stream: "Stream", other: "Stream") -> None:
        with self._lock:
            state = self._state(stream)
            other_state = self._state(other)
            state.merge(other_state.clock)
            state.advance(other_state.key, other_state.seq)

    def _host(self, device: "Device") -> dict[int, int]:
        host = self._hosts.get(device)
        if host is None:
            host = {}
            self._hosts[device] = host
        return host

    def on_host_sync_event(self, event: "Event") -> None:
        """The CPU observed ``event`` complete (synchronize or query)."""
        with self._lock:
            host = self._host(event.device)
            base, key, seq = self._event_clock(event)
            _merge(host, base)
            if key is not None and host.get(key, 0) < seq:
                host[key] = seq

    def on_host_sync_stream(self, stream: "Stream") -> None:
        with self._lock:
            state = self._state(stream)
            host = self._host(stream.device)
            _merge(host, state.clock)
            if host.get(state.key, 0) < state.seq:
                host[state.key] = state.seq

    def on_device_sync(self, device: "Device") -> None:
        for stream in device.streams:
            self.on_host_sync_stream(stream)

    # ------------------------------------------------------------------
    # Data accesses (wired from Device.launch and ProcessGroup)
    # ------------------------------------------------------------------
    def on_access(
        self,
        device: "Device",
        stream: "Stream",
        *,
        reads: Sequence["Storage"] = (),
        writes: Sequence["Storage"] = (),
    ) -> None:
        """The just-enqueued kernel on ``stream`` reads/writes storages."""
        with self._lock:
            state = self._state(stream)
            record = state.last or LaunchRecord(stream.name, state.key, state.seq, "kernel")
            for storage in reads:
                self._check_storage(device, stream, state, record, storage, is_write=False)
            for storage in writes:
                self._check_storage(device, stream, state, record, storage, is_write=True)

    def _check_storage(
        self,
        device: "Device",
        stream: "Stream",
        state: _StreamState,
        record: LaunchRecord,
        storage: "Storage",
        *,
        is_write: bool,
    ) -> None:
        if storage.device is not device or not device.is_sim_gpu:
            return  # host scalars riding along in a GPU op, etc.
        block = storage.block
        generation = self._block_gen.get(block, 0) if block is not None else 0
        shadow = self._storages.get(storage)
        if shadow is None or shadow.block is not block or shadow.generation != generation:
            # New storage lifetime: the allocator may hand back the very
            # same Block object on reallocate, so block identity alone is
            # not enough — the allocation generation disambiguates.  Any
            # accesses from the previous lifetime were retired by the
            # allocator's own reuse gate (checked in on_block_alloc).
            shadow = _StorageShadow(block, generation)
            self._storages[storage] = shadow
        if block is None:
            self._report(
                device,
                kind="use-after-free",
                storage=storage,
                prev=shadow.last_write,
                cur=record,
                detail="the storage was released before this kernel launched",
            )
            return
        writer = shadow.last_write
        if writer is not None and not self._covered(state, writer):
            self._report(
                device,
                kind="write-after-write" if is_write else "read-after-write",
                storage=storage,
                prev=writer,
                cur=record,
            )
        if is_write:
            for reader in shadow.readers.values():
                if reader.stream_key != state.key and not self._covered(state, reader):
                    self._report(
                        device,
                        kind="write-after-read",
                        storage=storage,
                        prev=reader,
                        cur=record,
                    )
            shadow.last_write = record
            shadow.readers = {}
        else:
            shadow.readers[state.key] = record
        uses = self._blocks.get(block)
        if uses is None:
            uses = {}
            self._blocks[block] = uses
        uses[state.key] = (state.seq, stream.ready_time, record)

    @staticmethod
    def _covered(state: _StreamState, record: LaunchRecord) -> bool:
        """Is ``record`` ordered before future work on ``state``'s stream?"""
        if record.stream_key == state.key:
            return True
        return state.clock.get(record.stream_key, 0) >= record.seq

    # ------------------------------------------------------------------
    # Allocator hook (wired from CachingAllocator.allocate)
    # ------------------------------------------------------------------
    def on_block_alloc(self, device: "Device", stream: "Stream", block) -> None:
        """The allocator handed ``block`` out for use on ``stream``.

        Independent shadow of ``record_stream`` semantics: reuse is safe
        when every cross-stream use either retired relative to the CPU
        clock (the allocator's own cudaEventQuery-style gate) or is
        ordered before the allocating stream by a happens-before edge.
        """
        with self._lock:
            self._block_gen[block] = self._block_gen.get(block, 0) + 1
            uses = self._blocks.pop(block, None)
            if not uses:
                return
            state = self._state(stream)
            now = device.cpu_time()
            for key, (seq, end, prev) in uses.items():
                if key == state.key:
                    continue  # same-stream reuse is ordered by the stream
                if end > now and state.clock.get(key, 0) < seq:
                    cur = LaunchRecord(
                        stream.name,
                        state.key,
                        state.seq,
                        f"alloc({block.size}B)",
                        getattr(_tls, "site", None),
                    )
                    self._report(
                        device,
                        kind="unretired-block-reuse",
                        storage=None,
                        prev=prev,
                        cur=cur,
                        detail=(
                            f"cross-stream use retires at t={end:.6f} but the CPU "
                            f"is at t={now:.6f} with no ordering edge"
                        ),
                    )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(
        self,
        device: "Device",
        *,
        kind: str,
        storage,
        prev: Optional[LaunchRecord],
        cur: Optional[LaunchRecord],
        detail: str = "",
    ) -> None:
        if storage is not None:
            dtype = getattr(storage.dtype, "name", str(storage.dtype))
            what = f"storage({storage.numel}x{dtype})"
        else:
            what = "allocator block"
        parts = [f"{kind} on {what}"]
        if prev is not None:
            parts.append(f"previous access {prev.describe()}")
        if cur is not None:
            parts.append(f"racing access {cur.describe()}")
        if detail:
            parts.append(detail)
        violation = StreamOrderViolation(
            "; ".join(parts), kind=kind, prev=prev, cur=cur, storage=what
        )
        self.violations.append(violation)
        try:
            device.emit_mark(f"sanitizer:{kind}")
        except Exception:  # pragma: no cover - tracing must never mask the report
            pass
        if self.raise_on_violation:
            raise violation


# ----------------------------------------------------------------------
# Module-level toggle (what the runtime hooks consult)
# ----------------------------------------------------------------------
_ACTIVE: Optional[StreamOrderSanitizer] = None


def active() -> Optional[StreamOrderSanitizer]:
    """The currently enabled sanitizer, or None."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def enable(*, raise_on_violation: bool = True) -> StreamOrderSanitizer:
    """Enable the sanitizer with fresh state; returns the instance.

    With ``raise_on_violation=False`` violations only accumulate in
    ``sanitizer.active().violations`` (and still emit trace marks).
    """
    global _ACTIVE
    _ACTIVE = StreamOrderSanitizer(raise_on_violation=raise_on_violation)
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def reset() -> None:
    """Drop all tracked state, keeping the sanitizer enabled."""
    if _ACTIVE is not None:
        enable(raise_on_violation=_ACTIVE.raise_on_violation)


@contextmanager
def enabled(*, raise_on_violation: bool = True):
    """Context manager: enable for the block, restore the prior state."""
    global _ACTIVE
    previous = _ACTIVE
    sanitizer = StreamOrderSanitizer(raise_on_violation=raise_on_violation)
    _ACTIVE = sanitizer
    try:
        yield sanitizer
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Launch-site plumbing (used by the autograd engine for diagnostics)
# ----------------------------------------------------------------------
def set_launch_site(site: Optional[str]) -> None:
    _tls.site = site


def current_launch_site() -> Optional[str]:
    return getattr(_tls, "site", None)


@contextmanager
def launch_site(site: str):
    """Attribute kernels launched inside the block to ``site``."""
    previous = getattr(_tls, "site", None)
    _tls.site = site
    try:
        yield
    finally:
        _tls.site = previous
