"""Gradient scalers for FP16 mixed precision.

Section 4.4: FP16's small dynamic range risks under/overflow, so
gradients are scaled to a safe magnitude before backward and unscaled
before the optimizer step; steps are skipped when non-finite gradients
are found and the scale is backed off.

Because FSDP shards gradients, the found-inf check is a *local* check
on each rank's shard — a normal local scaler breaks mathematical
equivalence (rank A could step while rank B skips).  The
:class:`ShardedGradScaler` all-reduces the found-inf flag over the
process group so every rank takes the same decision.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.optim.optimizer import Optimizer
from repro.tensor import Tensor

__all__ = ["GradScaler", "ShardedGradScaler"]


class GradScaler:
    """Loss scaling with dynamic scale adjustment."""

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 2000,
        enabled: bool = True,
    ):
        self._scale = init_scale
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.enabled = enabled
        self._growth_tracker = 0
        self._found_inf: Optional[bool] = None

    def get_scale(self) -> float:
        return self._scale

    def scale(self, loss: Tensor) -> Tensor:
        if not self.enabled:
            return loss
        return loss * self._scale

    def _check_local_inf(self, optimizer: Optimizer) -> bool:
        for group in optimizer.param_groups:
            for param in group["params"]:
                grad = param.grad
                if grad is None or not grad.is_materialized:
                    continue
                if not np.all(np.isfinite(grad._np)):
                    return True
        return False

    def _sync_found_inf(self, found_inf: bool) -> bool:
        """Hook for sharded variants to agree across ranks."""
        return found_inf

    def unscale_(self, optimizer: Optimizer) -> None:
        if not self.enabled:
            return
        found_inf = self._check_local_inf(optimizer)
        self._found_inf = self._sync_found_inf(found_inf)
        inv = 1.0 / self._scale
        with no_grad():
            for group in optimizer.param_groups:
                for param in group["params"]:
                    if param.grad is not None:
                        param.grad.mul_(inv)

    def step(self, optimizer: Optimizer) -> bool:
        """Run ``optimizer.step()`` unless non-finite grads were found.

        Returns True when the step was taken.
        """
        if not self.enabled:
            optimizer.step()
            return True
        if self._found_inf is None:
            self.unscale_(optimizer)
        if self._found_inf:
            return False
        optimizer.step()
        return True

    def update(self) -> None:
        if not self.enabled:
            return
        if self._found_inf:
            self._scale *= self.backoff_factor
            self._growth_tracker = 0
        else:
            self._growth_tracker += 1
            if self._growth_tracker >= self.growth_interval:
                self._scale *= self.growth_factor
                self._growth_tracker = 0
        self._found_inf = None


class ShardedGradScaler(GradScaler):
    """FSDP's scaler: the found-inf decision is agreed across ranks."""

    def __init__(self, process_group=None, **kwargs):
        super().__init__(**kwargs)
        self.process_group = process_group

    def _sync_found_inf(self, found_inf: bool) -> bool:
        group = self.process_group
        if group is None:
            from repro import distributed as dist

            if dist.is_initialized():
                group = dist.default_group()
        if group is None:
            return found_inf
        return bool(group.all_reduce_scalar(1.0 if found_inf else 0.0, op="max") > 0.0)
