"""Learning-rate schedulers (the usual training-loop companions)."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "LinearWarmup"]


class LRScheduler:
    """Base scheduler: rescales each param group's ``lr`` per step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_epoch = 0

    def get_lr(self) -> list[float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr

    @property
    def current_lrs(self) -> list[float]:
        return [group["lr"] for group in self.optimizer.param_groups]


class StepLR(LRScheduler):
    """Decay by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> list[float]:
        factor = self.gamma ** (self.last_epoch // self.step_size)
        return [base * factor for base in self.base_lrs]


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> list[float]:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        scale = 0.5 * (1.0 + math.cos(math.pi * progress))
        return [self.eta_min + (base - self.eta_min) * scale for base in self.base_lrs]


class LinearWarmup(LRScheduler):
    """Linear ramp from ``start_factor``·lr to lr over ``warmup_steps``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, start_factor: float = 0.0):
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        super().__init__(optimizer)
        self.warmup_steps = warmup_steps
        self.start_factor = start_factor

    def get_lr(self) -> list[float]:
        progress = min(self.last_epoch, self.warmup_steps) / self.warmup_steps
        factor = self.start_factor + (1.0 - self.start_factor) * progress
        return [base * factor for base in self.base_lrs]
