"""Optimizers, gradient clipping and mixed-precision scalers."""

from repro.optim.adam import Adam, AdamW
from repro.optim.clip import clip_grad_norm_, local_grad_norm_sq
from repro.optim.grad_scaler import GradScaler, ShardedGradScaler
from repro.optim.lr_scheduler import (
    CosineAnnealingLR,
    LinearWarmup,
    LRScheduler,
    StepLR,
)
from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "GradScaler",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "LinearWarmup",
    "ShardedGradScaler",
    "clip_grad_norm_",
    "local_grad_norm_sq",
]
