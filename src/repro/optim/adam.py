"""Adam and AdamW.

The paper's Section 5.4 experiments use Adam "to reflect a production
workload setup and to incur the costly two optimizer states per
parameter" — those two states dominate sharded memory accounting, so
the implementation keeps them as real tensors allocated on the
parameter's device (the simulated allocator sees them).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.autograd.grad_mode import no_grad
from repro.optim.optimizer import Optimizer
from repro.tensor import Tensor, zeros_like

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam with optional L2 regularization (``weight_decay`` added to grad)."""

    decoupled_weight_decay = False

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        foreach: bool = False,
    ):
        if lr < 0.0:
            raise ValueError(f"invalid learning rate: {lr}")
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"invalid betas: {betas}")
        # ``foreach`` is the multi-tensor fast path: all per-parameter
        # elementwise updates of one step fuse into a single kernel
        # launch (``Device.coalesce_kernels``).  The math — and hence
        # every parameter bit — is identical to the per-tensor path;
        # only launch accounting changes.  Essential for per-parameter
        # sharding, where the optimizer sees one leaf per parameter
        # instead of one flat buffer per unit.
        self.foreach = foreach
        super().__init__(
            params, dict(lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
        )

    def step(self) -> None:
        if self.foreach:
            device = self._foreach_device()
            if device is not None:
                with device.coalesce_kernels("adam_foreach"):
                    self._step_impl()
                return
        self._step_impl()

    def _foreach_device(self):
        for group in self.param_groups:
            for param in group["params"]:
                if getattr(param.device, "is_sim_gpu", False):
                    return param.device
        return None

    def _step_impl(self) -> None:
        with no_grad():
            for group in self.param_groups:
                lr = group["lr"]
                beta1, beta2 = group["betas"]
                eps = group["eps"]
                weight_decay = group["weight_decay"]
                for param in group["params"]:
                    if param.grad is None:
                        continue
                    grad = param.grad
                    state = self._state_for(param)
                    if not state:
                        state["step"] = 0
                        state["exp_avg"] = zeros_like(param)
                        state["exp_avg_sq"] = zeros_like(param)
                    state["step"] += 1
                    step = state["step"]
                    exp_avg: Tensor = state["exp_avg"]
                    exp_avg_sq: Tensor = state["exp_avg_sq"]

                    if weight_decay:
                        if self.decoupled_weight_decay:
                            param.data.mul_(1.0 - lr * weight_decay)
                        else:
                            grad = grad + weight_decay * param.detach()

                    exp_avg.mul_(beta1)
                    exp_avg.add_(grad, alpha=1.0 - beta1)
                    exp_avg_sq.mul_(beta2)
                    exp_avg_sq.add_(grad * grad, alpha=1.0 - beta2)

                    bias_c1 = 1.0 - beta1**step
                    bias_c2 = 1.0 - beta2**step
                    step_size = lr / bias_c1
                    denom = (exp_avg_sq / bias_c2).sqrt() + eps
                    param.data.add_(exp_avg / denom, alpha=-step_size)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    decoupled_weight_decay = True

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.01, foreach: bool = False):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay, foreach=foreach)
