"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

from repro.autograd.grad_mode import no_grad
from repro.optim.optimizer import Optimizer
from repro.tensor import Tensor, zeros_like

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if lr < 0.0:
            raise ValueError(f"invalid learning rate: {lr}")
        super().__init__(params, dict(lr=lr, momentum=momentum, weight_decay=weight_decay))

    def step(self) -> None:
        with no_grad():
            for group in self.param_groups:
                lr = group["lr"]
                momentum = group["momentum"]
                weight_decay = group["weight_decay"]
                for param in group["params"]:
                    if param.grad is None:
                        continue
                    grad = param.grad
                    if weight_decay:
                        grad = grad + weight_decay * param.detach()
                    if momentum:
                        state = self._state_for(param)
                        buf = state.get("momentum_buffer")
                        if buf is None:
                            buf = zeros_like(param)
                            state["momentum_buffer"] = buf
                        buf.mul_(momentum)
                        buf.add_(grad)
                        grad = buf
                    param.data.add_(grad, alpha=-lr)
