"""Gradient clipping utilities."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.tensor import Tensor

__all__ = ["clip_grad_norm_", "local_grad_norm_sq"]


def local_grad_norm_sq(parameters: Iterable[Tensor]) -> float:
    """Sum of squared gradient elements over local (possibly sharded) params."""
    total = 0.0
    for param in parameters:
        if param.grad is None:
            continue
        if param.grad.is_materialized:
            g = param.grad._np
            total += float(np.sum(np.square(g, dtype=np.float64)))
    return total


def clip_grad_norm_(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip local gradients to a total 2-norm of ``max_norm``.

    Note Section 7.2.1: under FSDP this *local* norm is wrong because
    every rank only holds a shard; use ``FullyShardedDataParallel
    .clip_grad_norm_`` which all-reduces the squared norms first.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total_norm = math.sqrt(local_grad_norm_sq(parameters))
    if total_norm > max_norm and total_norm > 0.0:
        scale = max_norm / (total_norm + 1e-6)
        with no_grad():
            for param in parameters:
                param.grad.mul_(scale)
    return total_norm
