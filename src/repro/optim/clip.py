"""Gradient clipping utilities.

Section 7.2.1: gradient clipping is one of the places where FSDP's
sharded representation changes the math.  Each rank only holds a shard
of every gradient, so the 2-norm must be computed *globally* — sum the
squared local norms across the sharding group with an all-reduce, then
take the square root.  Clipping by the local shard norm silently
applies a different scale on every rank and corrupts the model.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.tensor import Tensor

__all__ = ["clip_grad_norm_", "local_grad_norm_sq"]


def local_grad_norm_sq(parameters: Iterable[Tensor]) -> float:
    """Sum of squared gradient elements over local (possibly sharded) params."""
    total = 0.0
    for param in parameters:
        if param.grad is None:
            continue
        if param.grad.is_materialized:
            g = param.grad._np
            total += float(np.sum(np.square(g, dtype=np.float64)))
    return total


def clip_grad_norm_(
    parameters: Iterable[Tensor],
    max_norm: float,
    *,
    process_group: Optional[object] = None,
) -> float:
    """Clip gradients to a total 2-norm of ``max_norm``; returns the norm.

    With ``process_group`` the squared local norms are all-reduced
    across the group first, yielding the **global** norm — required
    whenever the parameters are shards (FSDP).  Every rank then applies
    the same scale, so the clipped global gradient matches what a
    single-rank run would produce.  Without a group the norm is local,
    which is only correct for unsharded (replicated or single-process)
    parameters.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total_sq = local_grad_norm_sq(parameters)
    if process_group is not None and process_group.world_size > 1:
        from repro.distributed import ReduceOp

        total_sq = process_group.all_reduce_scalar(total_sq, op=ReduceOp.SUM)
    total_norm = math.sqrt(total_sq)
    if total_norm > max_norm and total_norm > 0.0:
        scale = max_norm / (total_norm + 1e-6)
        with no_grad():
            for param in parameters:
                param.grad.mul_(scale)
    return total_norm
