"""Optimizer base class with parameter groups."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.autograd.grad_mode import no_grad
from repro.tensor import Tensor

__all__ = ["Optimizer"]


class Optimizer:
    """Base optimizer: holds parameter groups and per-parameter state.

    Note the FSDP caveat from Section 4.1: with sharded training the
    optimizer must be constructed *after* FSDP wraps the model, so that
    it holds the sharded FlatParameters and its state is sharded too —
    that is where ZeRO's optimizer-state memory saving comes from.
    """

    def __init__(self, params: Iterable[Tensor], defaults: dict):
        self.defaults = dict(defaults)
        self.state: dict[int, dict] = {}
        self.param_groups: list[dict] = []
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(group)
        else:
            self.add_param_group({"params": params})

    def add_param_group(self, group: dict) -> None:
        group = dict(group)
        group["params"] = list(group["params"])
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        self.param_groups.append(group)

    def zero_grad(self, set_to_none: bool = True) -> None:
        for group in self.param_groups:
            for param in group["params"]:
                if set_to_none:
                    param.grad = None
                elif param.grad is not None:
                    with no_grad():
                        param.grad.zero_()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _state_for(self, param: Tensor) -> dict:
        state = self.state.get(id(param))
        if state is None:
            state = {}
            self.state[id(param)] = state
        return state

    def state_bytes(self) -> int:
        """Total bytes of optimizer state (for memory accounting)."""
        total = 0
        for state in self.state.values():
            for value in state.values():
                if isinstance(value, Tensor):
                    total += value.nbytes
        return total
