"""Data types for the simulated tensor library.

The simulator distinguishes dtypes for three reasons:

1. Byte size drives memory accounting in the caching allocator
   (peak allocated / active / reserved, Figure 8).
2. Compute dtype selects the GPU peak-FLOPS lane in the kernel cost
   model (312 TFLOPS BF16 tensor core vs 19.5 TFLOPS FP32 on A100).
3. Low-precision numerics must be *emulated* so that mixed-precision
   training (Section 4.4 of the paper) has observable rounding, which
   the gradient-scaler tests rely on.

``bfloat16`` has no native numpy representation, so values are kept in
float32 storage and rounded to the nearest bfloat16-representable value
after each op via mantissa truncation (round-to-nearest-even).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "float32",
    "float16",
    "bfloat16",
    "float64",
    "int64",
    "int32",
    "uint8",
    "bool_",
    "all_dtypes",
    "quantize",
    "result_type",
    "from_numpy_dtype",
]


@dataclass(frozen=True)
class DType:
    """A tensor element type.

    Attributes:
        name: canonical name, e.g. ``"bfloat16"``.
        itemsize: bytes per element as accounted by the allocator.
        np_dtype: the numpy dtype used for *storage*. bfloat16 is stored
            in float32 and quantized after each op.
        is_floating: whether the dtype participates in autograd.
    """

    name: str
    itemsize: int
    np_dtype: np.dtype
    is_floating: bool

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"repro.{self.name}"


float32 = DType("float32", 4, np.dtype(np.float32), True)
float16 = DType("float16", 2, np.dtype(np.float16), True)
bfloat16 = DType("bfloat16", 2, np.dtype(np.float32), True)
float64 = DType("float64", 8, np.dtype(np.float64), True)
int64 = DType("int64", 8, np.dtype(np.int64), False)
int32 = DType("int32", 4, np.dtype(np.int32), False)
uint8 = DType("uint8", 1, np.dtype(np.uint8), False)
bool_ = DType("bool", 1, np.dtype(np.bool_), False)

all_dtypes = (float32, float16, bfloat16, float64, int64, int32, uint8, bool_)

_BY_NAME = {dt.name: dt for dt in all_dtypes}

# Promotion lattice for binary float ops; integer types promote to the
# float operand's dtype when mixed.
_FLOAT_RANK = {float16: 0, bfloat16: 1, float32: 2, float64: 3}


def get(name: str) -> DType:
    """Look up a dtype by canonical name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown dtype name: {name!r}") from None


def from_numpy_dtype(np_dtype: np.dtype) -> DType:
    """Map a numpy dtype to the closest repro dtype (bf16 unreachable)."""
    np_dtype = np.dtype(np_dtype)
    for dt in (float32, float16, float64, int64, int32, uint8, bool_):
        if dt.np_dtype == np_dtype:
            return dt
    if np_dtype in (np.dtype(np.int16), np.dtype(np.int8)):
        return int32
    raise ValueError(f"unsupported numpy dtype: {np_dtype}")


def result_type(a: DType, b: DType) -> DType:
    """Binary-op result dtype: floats win over ints, higher rank wins."""
    if a is b:
        return a
    if a.is_floating and not b.is_floating:
        return a
    if b.is_floating and not a.is_floating:
        return b
    if a.is_floating and b.is_floating:
        return a if _FLOAT_RANK[a] >= _FLOAT_RANK[b] else b
    # Both integral: pick the wider one.
    return a if a.itemsize >= b.itemsize else b


def _round_to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round float32 values to bfloat16 precision (nearest-even).

    bfloat16 keeps the float32 exponent and truncates the mantissa to
    7 bits; the standard trick adds half of the dropped LSB (plus the
    round-to-even correction) before truncating the low 16 bits.
    """
    as_int = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    rounding_bias = ((as_int >> 16) & 1).astype(np.uint32) + np.uint32(0x7FFF)
    rounded = ((as_int + rounding_bias) & np.uint32(0xFFFF0000)).view(np.float32)
    # NaN payloads can be clobbered by the bias; restore NaN-ness.
    nan_mask = np.isnan(values)
    if nan_mask.any():
        rounded = np.where(nan_mask, np.float32(np.nan), rounded)
    return rounded.reshape(values.shape)


def quantize(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Coerce a numpy array into ``dtype``'s storage representation.

    For bfloat16 this performs emulated rounding; everything else is a
    plain astype (no-op when already matching).
    """
    if dtype is bfloat16:
        return _round_to_bfloat16(np.asarray(values, dtype=np.float32))
    arr = np.asarray(values)
    if arr.dtype != dtype.np_dtype:
        arr = arr.astype(dtype.np_dtype)
    return arr
