"""Functional neural-network operations (compositions over repro.ops)."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro import dtypes, ops
from repro.tensor import Tensor, tensor

__all__ = [
    "linear",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "layer_norm",
    "embedding",
    "cross_entropy",
    "mse_loss",
    "scaled_dot_product_attention",
    "causal_mask",
]

linear = ops.linear
relu = ops.relu
gelu = ops.gelu
sigmoid = ops.sigmoid
tanh = ops.tanh
softmax = ops.softmax
log_softmax = ops.log_softmax
dropout = ops.dropout
layer_norm = ops.layer_norm
embedding = ops.embedding


def cross_entropy(logits: Tensor, targets: Tensor) -> Tensor:
    """Mean cross entropy over ``(N, C)`` or ``(..., C)`` logits."""
    classes = logits.shape[-1]
    flat_logits = logits.view(-1, classes)
    flat_targets = targets.view(-1) if targets.ndim > 1 else targets
    log_probs = ops.log_softmax(flat_logits, dim=-1)
    return ops.nll_loss(log_probs, flat_targets)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    diff = ops.sub(prediction, target)
    return ops.mean(ops.mul(diff, diff))


_mask_cache: dict[tuple[int, int], Tensor] = {}


def causal_mask(seq_len: int, device=None) -> Tensor:
    """Boolean mask that is True above the diagonal (disallowed keys).

    Cached per (sequence length, device) — paper-scale simulations hit
    this once per attention layer per iteration.
    """
    key = (seq_len, id(device) if device is not None else -1)
    cached = _mask_cache.get(key)
    if cached is not None:
        return cached
    mask = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
    result = tensor(mask, dtype=dtypes.bool_, device=device)
    if len(_mask_cache) > 64:
        _mask_cache.clear()
    _mask_cache[key] = result
    return result


def scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn_mask: Optional[Tensor] = None,
    dropout_p: float = 0.0,
    training: bool = True,
) -> Tensor:
    """Attention over ``(..., seq, head_dim)`` tensors."""
    head_dim = q.shape[-1]
    scores = ops.matmul(q, ops.transpose(k, -2, -1))
    scale = 1.0 / math.sqrt(head_dim)
    scores = ops.mul(scores, _scalar(scale, scores))
    if attn_mask is not None:
        scores = ops.masked_fill(scores, attn_mask, -1e9)
    weights = ops.softmax(scores, dim=-1)
    if dropout_p > 0.0:
        weights = ops.dropout(weights, dropout_p, training=training)
    return ops.matmul(weights, v)


def _scalar(value: float, like: Tensor) -> Tensor:
    return tensor(
        np.asarray(value, dtype=like.dtype.np_dtype), dtype=like.dtype, device=like.device
    )
