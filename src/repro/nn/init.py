"""Parameter initialization functions.

All initializers are in-place ops that record themselves on meta
tensors, so deferred initialization (Section 3.1) can replay them
bit-identically on a real device.
"""

from __future__ import annotations

import math

from repro.autograd.grad_mode import no_grad
from repro.tensor import Tensor

__all__ = [
    "zeros_",
    "ones_",
    "constant_",
    "normal_",
    "uniform_",
    "kaiming_uniform_",
    "xavier_uniform_",
    "trunc_normal_",
]


def zeros_(tensor: Tensor) -> Tensor:
    with no_grad():
        return tensor.zero_()


def ones_(tensor: Tensor) -> Tensor:
    with no_grad():
        return tensor.fill_(1.0)


def constant_(tensor: Tensor, value: float) -> Tensor:
    with no_grad():
        return tensor.fill_(value)


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    with no_grad():
        return tensor.normal_(mean, std)


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0) -> Tensor:
    with no_grad():
        return tensor.uniform_(low, high)


def _fan_in_out(tensor: Tensor) -> tuple[int, int]:
    if tensor.ndim < 2:
        raise ValueError("fan in/out requires at least a 2-D tensor")
    fan_out, fan_in = tensor.shape[0], tensor.shape[1]
    receptive = math.prod(tensor.shape[2:]) if tensor.ndim > 2 else 1
    return fan_in * receptive, fan_out * receptive


def kaiming_uniform_(tensor: Tensor, a: float = math.sqrt(5)) -> Tensor:
    """The ``nn.Linear`` default initializer."""
    fan_in, _ = _fan_in_out(tensor)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return uniform_(tensor, -bound, bound)


def xavier_uniform_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound)


def trunc_normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    """Approximate truncated normal: plain normal is close enough here."""
    return normal_(tensor, mean, std)
