"""Declarative activation checkpointing (torch's ``CheckpointWrapper``).

``CheckpointWrapper(module)`` reroutes the module's forward through
:func:`repro.nn.checkpoint`.  ``apply_activation_checkpointing`` wraps
every submodule matching a predicate — the usual companion of FSDP
block wrapping in the paper's large-model runs (Section 5.4).
"""

from __future__ import annotations

from typing import Callable

from repro.nn.checkpoint import checkpoint
from repro.nn.module import Module

__all__ = ["CheckpointWrapper", "apply_activation_checkpointing"]


class CheckpointWrapper(Module):
    """Run the wrapped module under activation checkpointing."""

    def __init__(self, module: Module):
        super().__init__()
        self.module = module

    def forward(self, *args, **kwargs):
        if kwargs:
            # The reentrant checkpoint takes positional tensors; bind
            # keyword arguments into the closure.
            return checkpoint(lambda *a: self.module(*a, **kwargs), *args)
        return checkpoint(self.module, *args)


def apply_activation_checkpointing(
    model: Module, check_fn: Callable[[Module], bool]
) -> Module:
    """Wrap every submodule for which ``check_fn`` is true.

    Wraps bottom-up and skips modules already wrapped (or inside a
    wrapped subtree would double-recompute).
    """
    for name, child in list(model._modules.items()):
        if child is None or isinstance(child, CheckpointWrapper):
            continue
        apply_activation_checkpointing(child, check_fn)
        if check_fn(child):
            model._modules[name] = CheckpointWrapper(child)
    return model
