"""Convolutional layers for the vision workloads (RegNet, DeepViT)."""

from __future__ import annotations

import math
from typing import Optional

from repro import dtypes, ops
from repro.cuda.device import Device, cpu_device
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.tensor import Tensor, empty

__all__ = ["Conv2d", "BatchNorm2d"]


class Conv2d(Module):
    """2-D convolution over (B, C, H, W) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        *,
        device: Optional[Device] = None,
        dtype: dtypes.DType = dtypes.float32,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            empty(out_channels, in_channels, kernel_size, kernel_size, dtype=dtype, device=device)
        )
        if bias:
            self.bias = Parameter(empty(out_channels, dtype=dtype, device=device))
        else:
            self.register_parameter("bias", None)
        self.reset_parameters()

    def reset_parameters(self) -> None:
        init.kaiming_uniform_(self.weight, a=math.sqrt(5))
        if self.bias is not None:
            fan_in = self.in_channels * self.kernel_size**2
            bound = 1.0 / math.sqrt(fan_in)
            init.uniform_(self.bias, -bound, bound)

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )


class BatchNorm2d(Module):
    """Batch normalization over the channel dim of (B, C, H, W).

    Uses batch statistics in training and running statistics in eval;
    implemented as a composition of differentiable primitives.
    """

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        *,
        device: Optional[Device] = None,
        dtype: dtypes.DType = dtypes.float32,
    ):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(empty(num_features, dtype=dtype, device=device))
        self.bias = Parameter(empty(num_features, dtype=dtype, device=device))
        from repro.tensor import ones, zeros

        self.register_buffer("running_mean", zeros(num_features, dtype=dtype, device=device))
        self.register_buffer("running_var", ones(num_features, dtype=dtype, device=device))
        init.ones_(self.weight)
        init.zeros_(self.bias)

    def forward(self, x: Tensor) -> Tensor:
        c = self.num_features
        if self.training:
            mean = ops.mean(x, (0, 2, 3), keepdim=True)
            centered = ops.sub(x, mean)
            var = ops.mean(ops.mul(centered, centered), (0, 2, 3), keepdim=True)
            from repro.autograd.grad_mode import no_grad

            if x.is_materialized:
                with no_grad():
                    m = self.momentum
                    self.running_mean.mul_(1 - m)
                    self.running_mean.add_(mean.detach().view(c), alpha=m)
                    self.running_var.mul_(1 - m)
                    self.running_var.add_(var.detach().view(c), alpha=m)
        else:
            mean = self.running_mean.view(1, c, 1, 1)
            var = self.running_var.view(1, c, 1, 1)
            centered = ops.sub(x, mean)
        denom = ops.sqrt(ops.add(var, _scalar(self.eps, x)))
        normed = ops.div(centered, denom)
        scale = self.weight.view(1, c, 1, 1)
        shift = self.bias.view(1, c, 1, 1)
        return ops.add(ops.mul(normed, scale), shift)

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}"


def _scalar(value: float, like: Tensor) -> Tensor:
    import numpy as np

    from repro.tensor import tensor

    return tensor(
        np.asarray(value, dtype=like.dtype.np_dtype), dtype=like.dtype, device=like.device
    )
