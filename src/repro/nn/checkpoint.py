"""Activation checkpointing (tensor rematerialization).

The paper's large-model experiments (Section 5.4) all run with
activation checkpointing enabled.  ``checkpoint(fn, *args)`` runs
``fn`` without recording a graph — intermediate activations are freed
immediately, which the simulated allocator observes — and recomputes
the forward during backward, so the recompute kernels appear on the
simulated timeline exactly where the real system pays them.

Interoperates with FSDP: the recompute reads the module's *current*
parameter views, which FSDP's pre-backward hook has already unsharded
by the time the checkpoint's backward runs.
"""

from __future__ import annotations

from typing import Callable

from repro import random as rrandom
from repro.autograd.engine import grad as autograd_grad
from repro.autograd.function import Function
from repro.autograd.grad_mode import enable_grad
from repro.tensor import Tensor

__all__ = ["checkpoint"]


class _CheckpointFunction(Function):
    @staticmethod
    def forward(ctx, run_fn: Callable, rng_state, *inputs):
        ctx.run_fn = run_fn
        ctx.rng_state = rng_state
        ctx.save_for_backward(*inputs)
        ctx.input_requires = tuple(
            isinstance(t, Tensor) and t.requires_grad for t in inputs
        )
        outputs = run_fn(*inputs)
        ctx.single_output = not isinstance(outputs, tuple)
        return outputs

    @staticmethod
    def backward(ctx, *grads):
        inputs = ctx.saved_tensors
        detached = []
        for t, needs in zip(inputs, ctx.input_requires):
            d = t.detach()
            d.requires_grad = needs
            detached.append(d)

        current_rng = rrandom.get_state()
        rrandom.set_state(ctx.rng_state)
        try:
            with enable_grad():
                outputs = ctx.run_fn(*detached)
        finally:
            rrandom.set_state(current_rng)

        output_list = [outputs] if not isinstance(outputs, tuple) else list(outputs)
        grad_list = list(grads)
        if len(grad_list) != len(output_list):
            raise RuntimeError(
                "checkpoint: recomputed outputs do not match saved outputs"
            )
        grad_roots = [o for o, g in zip(output_list, grad_list) if g is not None]
        seed_grads = [g for g in grad_list if g is not None]
        grad_inputs_wanted = [d for d in detached if d.requires_grad]
        grad_map = {}
        if grad_roots and grad_inputs_wanted:
            computed = autograd_grad(grad_roots, grad_inputs_wanted, seed_grads)
            grad_map = {id(d): g for d, g in zip(grad_inputs_wanted, computed)}
        elif grad_roots:
            # Still run backward so parameter gradients accumulate.
            from repro.autograd.engine import run_backward

            run_backward(grad_roots, seed_grads)

        input_grads = tuple(grad_map.get(id(d)) for d in detached)
        return (None, None) + input_grads


def checkpoint(run_fn: Callable, *inputs):
    """Checkpoint ``run_fn(*inputs)``: free activations, recompute later.

    ``run_fn`` may close over modules; it is re-invoked during backward
    with detached copies of ``inputs`` and the RNG state captured at
    forward time (so dropout masks match).
    """
    rng_state = rrandom.get_state()
    return _CheckpointFunction.apply(run_fn, rng_state, *inputs)
