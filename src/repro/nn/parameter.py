"""``Parameter`` — a tensor registered as a module's trainable state."""

from __future__ import annotations

from repro.tensor import Tensor

__all__ = ["Parameter"]


class Parameter(Tensor):
    """A :class:`Tensor` that modules register as trainable.

    Shares storage with the tensor it is built from.  FSDP's
    ``FlatParameter`` subclasses this further (Section 4.2).
    """

    __slots__ = ()

    def __init__(self, data: Tensor, requires_grad: bool = True):
        if not isinstance(data, Tensor):
            raise TypeError("Parameter expects a Tensor")
        super().__init__(
            data._storage,
            data.shape,
            offset=data._offset,
            dtype=data.dtype,
            requires_grad=requires_grad,
        )
        self._init_records = data._init_records

    def __repr__(self) -> str:
        return "Parameter containing:\n" + super().__repr__()
