"""``Module`` — the building block of models.

Implements the subset of ``torch.nn.Module`` that FSDP interoperates
with (Section 4): parameter/buffer/submodule registration, recursive
traversal with fully-qualified names, forward pre/post hooks (the
mechanism behind ``fully_shard``), ``apply``, ``state_dict``, train/eval
mode, and device/dtype movement through ``_apply``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional

from repro.autograd.function import RemovableHandle
from repro.autograd.grad_mode import no_grad
from repro.nn.parameter import Parameter
from repro.tensor import Tensor

__all__ = ["Module"]


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_forward_pre_hooks", OrderedDict())
        object.__setattr__(self, "_forward_hooks", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute magic
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._drop_from_all(name)
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._drop_from_all(name)
            self._modules[name] = value
        else:
            if name in self._parameters and isinstance(value, Tensor):
                raise TypeError(
                    f"cannot assign plain Tensor to parameter {name!r}; "
                    "use Parameter or .data"
                )
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        for registry in ("_parameters", "_buffers", "_modules"):
            table = self.__dict__.get(registry)
            if table is not None and name in table:
                return table[name]
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    def __delattr__(self, name: str) -> None:
        for registry in (self._parameters, self._buffers, self._modules):
            if name in registry:
                del registry[name]
                return
        object.__delattr__(self, name)

    def _drop_from_all(self, name: str) -> None:
        self._parameters.pop(name, None)
        self._buffers.pop(name, None)
        self._modules.pop(name, None)
        self.__dict__.pop(name, None)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        self._drop_from_all(name)
        self._parameters[name] = param

    def register_buffer(self, name: str, buffer: Optional[Tensor]) -> None:
        self._drop_from_all(name)
        self._buffers[name] = buffer

    def add_module(self, name: str, module: Optional["Module"]) -> None:
        self._drop_from_all(name)
        self._modules[name] = module

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            if child is None:
                continue
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        for child in self._modules.values():
            if child is not None:
                yield child

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        for name, child in self._modules.items():
            if child is not None:
                yield name, child

    def named_parameters(
        self, prefix: str = "", recurse: bool = True
    ) -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        modules = self.named_modules(prefix) if recurse else [(prefix, self)]
        for module_prefix, module in modules:
            for name, param in module._parameters.items():
                if param is None or id(param) in seen:
                    continue
                seen.add(id(param))
                full = f"{module_prefix}.{name}" if module_prefix else name
                yield full, param

    def parameters(self, recurse: bool = True) -> Iterator[Parameter]:
        for _, param in self.named_parameters(recurse=recurse):
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for module_prefix, module in self.named_modules(prefix):
            for name, buffer in module._buffers.items():
                if buffer is None:
                    continue
                full = f"{module_prefix}.{name}" if module_prefix else name
                yield full, buffer

    def buffers(self) -> Iterator[Tensor]:
        for _, buffer in self.named_buffers():
            yield buffer

    def get_submodule(self, target: str) -> "Module":
        module: Module = self
        if target:
            for part in target.split("."):
                module = module._modules[part]
        return module

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def register_forward_pre_hook(self, hook: Callable) -> RemovableHandle:
        """``hook(module, args)`` may return replacement args."""
        handle = RemovableHandle(self._forward_pre_hooks)
        self._forward_pre_hooks[handle.hook_id] = hook
        return handle

    def register_forward_hook(self, hook: Callable) -> RemovableHandle:
        """``hook(module, args, output)`` may return a replacement output."""
        handle = RemovableHandle(self._forward_hooks)
        self._forward_hooks[handle.hook_id] = hook
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        if self._forward_pre_hooks:
            for hook in list(self._forward_pre_hooks.values()):
                result = hook(self, args)
                if result is not None:
                    args = result if isinstance(result, tuple) else (result,)
        output = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in list(self._forward_hooks.values()):
                result = hook(self, args, output)
                if result is not None:
                    output = result
        return output

    # ------------------------------------------------------------------
    # Mode / application
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for child in self.children():
            child.apply(fn)
        fn(self)
        return self

    def _apply(self, fn: Callable[[Tensor], Tensor]) -> "Module":
        """Transform all parameters/buffers in place (device/dtype moves)."""
        for module in self.modules():
            for name, param in module._parameters.items():
                if param is None:
                    continue
                with no_grad():
                    param.data = fn(param)
                    if param.grad is not None:
                        param.grad = fn(param.grad)
            for name, buffer in module._buffers.items():
                if buffer is None:
                    continue
                module._buffers[name] = fn(buffer)
        return self

    def to(self, device=None, dtype=None) -> "Module":
        return self._apply(lambda t: t.to(device=device, dtype=dtype))

    def zero_grad(self, set_to_none: bool = True) -> None:
        for param in self.parameters():
            if set_to_none:
                param.grad = None
            elif param.grad is not None:
                with no_grad():
                    param.grad.zero_()

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, Tensor]":
        state: OrderedDict[str, Tensor] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.detach()
        for name, buffer in self.named_buffers():
            state[name] = buffer.detach()
        return state

    def load_state_dict(self, state_dict, strict: bool = True) -> None:
        own: dict[str, Tensor] = dict(self.named_parameters())
        own.update(dict(self.named_buffers()))
        missing = [k for k in own if k not in state_dict]
        unexpected = [k for k in state_dict if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(
                f"load_state_dict mismatch: missing={missing} unexpected={unexpected}"
            )
        with no_grad():
            for name, value in state_dict.items():
                if name in own:
                    own[name].copy_(value)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.numel for p in self.parameters())

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self.named_children():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"
