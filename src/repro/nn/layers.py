"""Standard layers: Linear, Embedding, LayerNorm, Dropout, containers."""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro import dtypes
from repro.cuda.device import Device, cpu_device
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.tensor import Tensor, empty

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Sequential",
    "ModuleList",
]


class Linear(Module):
    """``y = x W^T + b`` with the standard Kaiming-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        *,
        device: Optional[Device] = None,
        dtype: dtypes.DType = dtypes.float32,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(empty(out_features, in_features, dtype=dtype, device=device))
        if bias:
            self.bias = Parameter(empty(out_features, dtype=dtype, device=device))
        else:
            self.register_parameter("bias", None)
        self.reset_parameters()

    def reset_parameters(self) -> None:
        init.kaiming_uniform_(self.weight, a=math.sqrt(5))
        if self.bias is not None:
            bound = 1.0 / math.sqrt(self.in_features)
            init.uniform_(self.bias, -bound, bound)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"


class Embedding(Module):
    """A lookup table of ``num_embeddings`` vectors of ``embedding_dim``."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        *,
        device: Optional[Device] = None,
        dtype: dtypes.DType = dtypes.float32,
    ):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            empty(num_embeddings, embedding_dim, dtype=dtype, device=device)
        )
        self.reset_parameters()

    def reset_parameters(self) -> None:
        init.normal_(self.weight)

    def forward(self, indices: Tensor) -> Tensor:
        return F.embedding(self.weight, indices)

    def extra_repr(self) -> str:
        return f"num={self.num_embeddings}, dim={self.embedding_dim}"


class LayerNorm(Module):
    """Normalization over the trailing feature dimension."""

    def __init__(
        self,
        normalized_shape: int,
        eps: float = 1e-5,
        elementwise_affine: bool = True,
        *,
        device: Optional[Device] = None,
        dtype: dtypes.DType = dtypes.float32,
    ):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        if elementwise_affine:
            self.weight = Parameter(empty(normalized_shape, dtype=dtype, device=device))
            self.bias = Parameter(empty(normalized_shape, dtype=dtype, device=device))
            self.reset_parameters()
        else:
            self.register_parameter("weight", None)
            self.register_parameter("bias", None)

    def reset_parameters(self) -> None:
        init.ones_(self.weight)
        init.zeros_(self.bias)

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)

    def extra_repr(self) -> str:
        return f"shape={self.normalized_shape}, eps={self.eps}"


class Dropout(Module):
    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chains modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """Holds submodules in a list."""

    def __init__(self, modules: Optional[Iterable[Module]] = None):
        super().__init__()
        if modules is not None:
            for module in modules:
                self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]
