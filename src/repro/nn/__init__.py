"""Neural network modules and functional ops."""

from repro.nn import functional
from repro.nn import init
from repro.nn.checkpoint import checkpoint
from repro.nn.checkpoint_wrapper import CheckpointWrapper, apply_activation_checkpointing
from repro.nn.conv import BatchNorm2d, Conv2d
from repro.nn.layers import (
    GELU,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Conv2d",
    "BatchNorm2d",
    "Sequential",
    "ModuleList",
    "checkpoint",
    "CheckpointWrapper",
    "apply_activation_checkpointing",
    "functional",
    "init",
]
