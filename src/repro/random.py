"""Seeded random number generation for the tensor library.

A process-global generator provides reproducible initialization.  Each
random op draws a fresh child seed from its generator; deferred
initialization (Section 3.1) records that child seed so that replaying
the op on a real device yields bit-identical values.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["manual_seed", "default_generator", "Generator", "fork_seed"]

_lock = threading.Lock()


class Generator:
    """A seedable source of child seeds and numpy generators."""

    def __init__(self, seed: int = 0):
        self._seed_seq = np.random.SeedSequence(seed)

    def manual_seed(self, seed: int) -> "Generator":
        self._seed_seq = np.random.SeedSequence(seed)
        return self

    def spawn_seed(self) -> int:
        """Draw the next child seed (deterministic given the seed)."""
        with _lock:
            child = self._seed_seq.spawn(1)[0]
        return int(child.generate_state(1)[0])

    @staticmethod
    def numpy_rng(child_seed: int) -> np.random.Generator:
        """Build the numpy generator for a previously drawn child seed."""
        return np.random.default_rng(child_seed)


    def get_state(self):
        """Snapshot of the generator state (for checkpoint replay).

        A ``SeedSequence`` is fully described by its constructor inputs
        plus the spawn counter, so the snapshot rebuilds one instead of
        deep-copying (activation checkpointing snapshots twice per
        checkpointed region, making this a hot path).
        """
        with _lock:
            ss = self._seed_seq
            return np.random.SeedSequence(
                entropy=ss.entropy,
                spawn_key=ss.spawn_key,
                pool_size=ss.pool_size,
                n_children_spawned=ss.n_children_spawned,
            )

    def set_state(self, state) -> None:
        """Restore a snapshot taken by :meth:`get_state`."""
        with _lock:
            self._seed_seq = np.random.SeedSequence(
                entropy=state.entropy,
                spawn_key=state.spawn_key,
                pool_size=state.pool_size,
                n_children_spawned=state.n_children_spawned,
            )


_default = Generator(0)


def default_generator() -> Generator:
    return _default


def manual_seed(seed: int) -> None:
    """Seed the process-global generator (like ``torch.manual_seed``)."""
    _default.manual_seed(seed)


def fork_seed(generator: Generator | None = None) -> int:
    """Draw a child seed from ``generator`` (default: the global one)."""
    return (generator or _default).spawn_seed()


def get_state():
    """Snapshot the global generator (activation-checkpoint replay)."""
    return _default.get_state()


def set_state(state) -> None:
    """Restore a snapshot of the global generator."""
    _default.set_state(state)
