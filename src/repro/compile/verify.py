"""Re-prove every compiler rewrite against the pristine capture.

The verifier is the compile-time face of the stream sanitizer: instead
of trusting the passes, it replays the optimized schedule's program
points and checks that every ordering edge the eager iteration relied
on still holds.  Any failure raises
:class:`~repro.errors.StreamOrderViolation` with ``kind=
"compile-dropped-edge"`` — the same exception the runtime sanitizer
would raise later, caught before a single kernel launches.

Checks, per captured edge:

- every captured AllGather member still belongs to exactly one live
  bucket of the same phase, issued no later than each captured
  consumer wait point (no unshard after its first consumer);
- by each captured wait point, some live wait on that member's bucket
  has already executed on the compute stream (dead-wait elimination
  may dedupe waits but never drop coverage);
- every captured ReduceScatter member's bucket fires no earlier than
  the member's post-backward (gradients exist) and at an
  executor-fireable point no later than finalize;
- every collective trigger names a program point the executor can act
  at.
"""

from __future__ import annotations

from repro.compile.ir import Graph, NodeKind
from repro.errors import StreamOrderViolation

__all__ = ["verify_schedule"]

_FIREABLE = {"iter_begin", "pre_forward", "pre_backward", "post_backward", "finalize"}


def _fail(message: str) -> None:
    raise StreamOrderViolation(message, kind="compile-dropped-edge")


def verify_schedule(captured: Graph, optimized: Graph) -> None:
    positions = optimized.positions()

    def pos(trigger) -> int:
        trigger = tuple(trigger)
        if trigger not in positions:
            _fail(f"schedule references unknown program point {trigger}")
        return positions[trigger]

    bucket_of: dict = {}  # (phase, member label) -> AG bucket node
    for bucket in optimized.live(NodeKind.ALL_GATHER):
        if bucket.trigger[0] not in _FIREABLE:
            _fail(
                f"all-gather bucket {bucket.describe()} triggers at "
                f"non-executable point {tuple(bucket.trigger)}"
            )
        for member in bucket.units:
            key = (bucket.phase, member)
            if key in bucket_of:
                _fail(
                    f"unit {member!r} appears in two {bucket.phase} "
                    "all-gather buckets"
                )
            bucket_of[key] = bucket
    rs_bucket_of: dict = {}
    for bucket in optimized.live(NodeKind.REDUCE_SCATTER):
        if bucket.trigger[0] not in _FIREABLE:
            _fail(
                f"reduce-scatter bucket {bucket.describe()} triggers at "
                f"non-executable point {tuple(bucket.trigger)}"
            )
        for member in bucket.units:
            if member in rs_bucket_of:
                _fail(f"unit {member!r} appears in two reduce-scatter buckets")
            rs_bucket_of[member] = bucket

    # Waits that survive, ordered by when they execute.
    covered_at: dict = {}  # bucket id -> earliest surviving wait position
    for wait in optimized.live(NodeKind.WAIT):
        p = pos(wait.trigger)
        if p < pos(optimized.node(wait.target).trigger):
            _fail(
                f"wait for {optimized.node(wait.target).describe()} at "
                f"{tuple(wait.trigger)} precedes the bucket's issue"
            )
        covered_at[wait.target] = min(covered_at.get(wait.target, p), p)

    for wait in captured.live(NodeKind.WAIT):
        ag = captured.node(wait.target)
        bucket = bucket_of.get((ag.phase, ag.unit))
        if bucket is None:
            _fail(
                f"captured all-gather for {ag.unit!r} ({ag.phase}) has no "
                "bucket in the optimized schedule"
            )
        consumer = pos(wait.trigger)
        if pos(bucket.trigger) > consumer:
            _fail(
                f"bucket {bucket.describe()} issues after its consumer "
                f"{ag.unit!r} at {tuple(wait.trigger)}"
            )
        if covered_at.get(bucket.id, len(positions) + 1) > consumer:
            _fail(
                f"no surviving wait orders {ag.unit!r}'s compute at "
                f"{tuple(wait.trigger)} after bucket {bucket.describe()}"
            )

    for node in captured.live(NodeKind.REDUCE_SCATTER):
        member = node.unit
        bucket = rs_bucket_of.get(member)
        if bucket is None:
            _fail(
                f"captured reduce-scatter for {member!r} has no bucket in "
                "the optimized schedule"
            )
        if pos(bucket.trigger) < pos(("post_backward", member)):
            _fail(
                f"reduce-scatter bucket {bucket.describe()} fires before "
                f"{member!r}'s gradient is produced"
            )
