"""Lower the optimized graph to an executable schedule and drive it.

:class:`CompiledSchedule` is the static artifact: bucket tables plus a
map from program points (the same CPU-side hook positions the eager
runtime already has) to actions.  :class:`CompiledExecutor` replays it
inside the unmodified eager hook skeleton — ``FsdpUnit.pre_forward``
still records execution order, pushes profiler scopes and installs
views; only the *communication* decisions (what to issue, what to wait
on, when to reduce) are delegated here.  Everything lowers to the same
``Stream.enqueue`` / ``Device.launch`` sequence the eager path uses,
so ``SimConfig.compile=True`` runs through the unchanged simulator,
allocator, sanitizer and profiler.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.autograd.grad_mode import no_grad
from repro.compile.ir import Graph, NodeKind
from repro.distributed.process_group import ReduceOp

__all__ = ["CompiledExecutor", "CompiledSchedule", "ScheduledBucket"]


class ScheduledBucket:
    __slots__ = ("id", "kind", "phase", "units", "nbytes", "trigger", "reason")

    def __init__(self, *, id, kind, phase, units, nbytes, trigger, reason):
        self.id = id
        self.kind = kind
        self.phase = phase
        self.units = tuple(units)
        self.nbytes = nbytes
        self.trigger = tuple(trigger)
        self.reason = reason

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "units": list(self.units),
            "nbytes": self.nbytes,
            "trigger": list(self.trigger),
        }


class CompiledSchedule:
    """Executable lowering of an optimized :class:`Graph`."""

    def __init__(self, graph: Graph):
        #: The optimized graph this schedule lowers; ``captured`` (set
        #: by ``compile_capture``) is the pristine pre-pass twin —
        #: golden-trace tests prove invariants against the pair.
        self.graph = graph
        self.captured: Optional[Graph] = None
        self.buckets: dict = {}
        #: trigger point -> [("issue"|"flush", bucket id), ...]
        self.actions: dict = {}
        #: (phase, unit label) -> AllGather bucket id
        self.ag_bucket_of: dict = {}
        #: unit label -> ReduceScatter bucket id
        self.rs_bucket_of: dict = {}
        #: wait point -> AllGather bucket id (surviving waits only)
        self.waits: dict = {}
        self.stats = dict(graph.stats)
        for node in graph.live(NodeKind.ALL_GATHER):
            reason = "compiled_forward" if node.phase == "forward" else "compiled_backward"
            bucket = ScheduledBucket(
                id=node.id,
                kind="all_gather",
                phase=node.phase,
                units=node.units,
                nbytes=node.nbytes,
                trigger=node.trigger,
                reason=reason,
            )
            self.buckets[bucket.id] = bucket
            self.actions.setdefault(bucket.trigger, []).append(("issue", bucket.id))
            for member in bucket.units:
                self.ag_bucket_of[(bucket.phase, member)] = bucket.id
        for node in graph.live(NodeKind.REDUCE_SCATTER):
            bucket = ScheduledBucket(
                id=node.id,
                kind="reduce_scatter",
                phase="backward",
                units=node.units,
                nbytes=node.nbytes,
                trigger=node.trigger,
                reason="compiled_reduce",
            )
            self.buckets[bucket.id] = bucket
            self.actions.setdefault(bucket.trigger, []).append(("flush", bucket.id))
            for member in bucket.units:
                self.rs_bucket_of[member] = bucket.id
        for node in graph.live(NodeKind.WAIT):
            target = node.target
            point = tuple(node.trigger)
            if target in self.buckets:
                self.waits[point] = target

    @property
    def ag_buckets(self) -> list:
        return [b for b in self.buckets.values() if b.kind == "all_gather"]

    @property
    def rs_buckets(self) -> list:
        return [b for b in self.buckets.values() if b.kind == "reduce_scatter"]

    def summary(self) -> dict:
        return {
            "all_gather_buckets": [b.describe() for b in self.ag_buckets],
            "reduce_scatter_buckets": [b.describe() for b in self.rs_buckets],
            "stats": {
                k: v for k, v in self.stats.items() if not isinstance(v, Graph)
            },
        }


class CompiledExecutor:
    """Replay a :class:`CompiledSchedule` through the eager runtime."""

    def __init__(self, runtime, schedule: CompiledSchedule):
        self.runtime = runtime
        self.schedule = schedule
        self._units: dict = {
            unit.label: unit for unit in runtime.units if unit.handle is not None
        }
        self._issued: dict = {}  # bucket id -> completion Event (or None)
        self._fired: set = set()

    # ------------------------------------------------------------------
    # Hook entry points (called from FsdpUnit / FsdpRuntime)
    # ------------------------------------------------------------------
    def begin_iteration(self) -> None:
        self._issued = {}
        self._fired = set()
        self._fire(("iter_begin", ""))

    def on_pre_forward(self, unit) -> None:
        label = unit.label
        self._fire(("pre_forward", label))
        self._ensure_issued("forward", unit)
        self._wait(("pre_forward", label))

    def on_pre_backward(self, unit) -> None:
        label = unit.label
        self._fire(("pre_backward", label))
        self._ensure_issued("backward", unit)
        self._wait(("pre_backward", label))

    def on_post_backward(self, unit) -> None:
        self._fire(("post_backward", unit.label))

    def on_finalize(self) -> None:
        # Sweep: any reduce bucket whose trigger never fired (a unit's
        # backward was skipped) still flushes whatever gradients exist.
        for bucket in self.schedule.rs_buckets:
            self._flush_bucket(bucket.id)

    # ------------------------------------------------------------------
    def _fire(self, trigger) -> None:
        if trigger in self._fired:
            return
        self._fired.add(trigger)
        for action, bucket_id in self.schedule.actions.get(trigger, ()):
            if action == "issue":
                self._issue_bucket(bucket_id)
            else:
                self._flush_bucket(bucket_id)

    def _ensure_issued(self, phase: str, unit) -> None:
        """Safety net for capture/execution divergence: if this unit's
        bucket has not issued by its own consume point, issue it now
        (the verifier proves this never happens for a faithful replay)."""
        bucket_id = self.schedule.ag_bucket_of.get((phase, unit.label))
        if bucket_id is not None:
            if bucket_id not in self._issued:
                self._issue_bucket(bucket_id)
            return
        handle = unit.handle
        if handle is not None and not handle.is_unsharded:
            # Unit unknown to the schedule (divergence): fall back to a
            # plain eager unshard so correctness never depends on the
            # schedule being exhaustive.
            runtime = self.runtime
            runtime.admit_allgather()
            event = handle.unshard(runtime.unshard_stream)
            unit._last_unshard_event = event
            runtime.device.default_stream.wait_event(event)

    def _wait(self, point) -> None:
        bucket_id = self.schedule.waits.get(point)
        if bucket_id is None:
            return
        event = self._issued.get(bucket_id)
        if event is not None:
            self.runtime.device.default_stream.wait_event(event)

    # ------------------------------------------------------------------
    def _issue_bucket(self, bucket_id: int) -> None:
        bucket = self.schedule.buckets[bucket_id]
        runtime = self.runtime
        device = runtime.device
        self._issued[bucket_id] = None
        members = [
            unit
            for unit in (self._units.get(label) for label in bucket.units)
            if unit is not None
            and unit.handle is not None
            and not unit.handle.is_unsharded
        ]
        if not members:
            return
        prof = getattr(device, "profiler", None)
        if prof is not None:
            now = device.cpu_time()
            for unit in members:
                prof.on_unshard_issue(unit.label, reason=bucket.reason, time=now)
        scope = (
            prof.scoped(f"unshard:{members[0].label}@{bucket.reason}")
            if prof is not None
            else nullcontext()
        )
        with scope:
            runtime.admit_allgather()
            stream = runtime.unshard_stream
            pairs = []
            committing = []
            fallback = []
            with device.stream(stream), no_grad():
                for unit in members:
                    pair = unit.handle.unshard_pair(stream)
                    if pair is None:
                        fallback.append(unit)
                    else:
                        pairs.append(pair)
                        committing.append(unit.handle)
                if pairs:
                    committing[0].shard_group.all_gather_into_tensor_coalesced(
                        pairs, stream=stream
                    )
                    for handle in committing:
                        handle.unshard_commit()
            for unit in fallback:
                # Handles the coalesced path cannot batch (CPU offload,
                # world size 1, uneven per-parameter layouts) unshard
                # individually on the same stream — still covered by
                # the bucket's single completion event below.
                unit.handle.unshard(stream)
            event = stream.record_event()
        for unit in members:
            unit._last_unshard_event = event
        self._issued[bucket_id] = event

    def _flush_bucket(self, bucket_id: int) -> None:
        bucket = self.schedule.buckets[bucket_id]
        runtime = self.runtime
        device = runtime.device
        members = [
            unit
            for unit in (self._units.get(label) for label in bucket.units)
            if unit is not None and unit.handle is not None
        ]
        if not members:
            return
        prof = getattr(device, "profiler", None)
        scope = (
            prof.scoped(f"reduce:{members[0].label}")
            if prof is not None
            else nullcontext()
        )
        with scope:
            stream = runtime.unshard_stream
            jobs = []
            fallback = []
            with device.stream(stream), no_grad():
                stream.wait_stream(device.default_stream)
                for unit in members:
                    if unit._no_sync:
                        fallback.append(unit)
                        continue
                    job = unit.handle.reduce_grad_pair(
                        replicate_group=unit.plan.replicate_group
                    )
                    if job is None:
                        fallback.append(unit)
                    else:
                        jobs.append((unit, job))
                if jobs:
                    group = jobs[0][0].handle.shard_group
                    work = group.reduce_scatter_tensor_coalesced(
                        [(job.output, job.input) for _, job in jobs],
                        op=ReduceOp.AVG,
                        stream=stream,
                    )
                    for unit, job in jobs:
                        finished = job.finish(work, stream)
                        unit.pending_reduce_work = finished or work
            for unit in fallback:
                # no_sync accumulation, world size 1 and no-gradient
                # units keep the eager reduction (which no-ops or
                # all-reduces as appropriate).
                work = unit.handle.reduce_grad(
                    stream,
                    replicate_group=unit.plan.replicate_group,
                    no_sync=unit._no_sync,
                )
                if work is not None:
                    unit.pending_reduce_work = work
