"""Graph-captured FSDP compiler.

``repro.compile`` promotes the eager FSDP runtime's first iteration
into a captured IR (compute, collectives, waits, reshards with
dependency and liveness edges), runs bucketing/fusion, overlap
reordering and dead-wait elimination over it, re-proves every rewrite
against the pristine capture, and lowers the result to a
:class:`~repro.compile.schedule.CompiledSchedule` the runtime replays
from iteration two onward.  See DESIGN.md's "Compiler" section.

Enable with ``fully_shard(module, compile=True)`` or
``SimConfig(compile=True)``; iteration one runs eager under a
recording hook, every later iteration runs the compiled schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compile import passes
from repro.compile.capture import CaptureHook
from repro.compile.ir import Graph, Node, NodeKind
from repro.compile.passes import KNEE_ELEMS
from repro.compile.schedule import CompiledExecutor, CompiledSchedule
from repro.compile.verify import verify_schedule

__all__ = [
    "CaptureHook",
    "CompileSettings",
    "CompiledExecutor",
    "CompiledSchedule",
    "Graph",
    "KNEE_ELEMS",
    "Node",
    "NodeKind",
    "compile_capture",
]


@dataclass
class CompileSettings:
    """Per-root compiler configuration (carried by ``FsdpRuntime``)."""

    enabled: bool = False
    #: Bucket knee in *elements* of the gather dtype; None = Figure-2
    #: default (~33M).  Tests lower this to force multi-bucket
    #: schedules on small models.
    bucket_elems: Optional[int] = None
    #: Optional transient-memory bound (bytes) the reorder pass must
    #: prove the pipelined schedule stays under.
    memory_budget: Optional[int] = None
    #: Run the compile-time verifier (tests disable it only to show
    #: the runtime sanitizer catches what it would have).
    verify: bool = True
    #: Unit label -> (saved_bytes, transient_bytes) activation
    #: footprints from ``ModelTrace.per_unit``.
    liveness: dict = field(default_factory=dict)


def compile_capture(
    capture: CaptureHook,
    *,
    bucket_elems: Optional[int] = None,
    elem_size: int = 4,
    memory_budget: Optional[int] = None,
    verify: bool = True,
) -> CompiledSchedule:
    """Capture -> passes -> verify -> schedule.

    Builds two graphs from the capture: a pristine copy the verifier
    trusts and a working copy the passes mutate.  Pass functions are
    looked up through the module so tests can swap in broken versions
    (the sanitizer-as-oracle negative controls).
    """
    captured = capture.graph()
    optimized = capture.graph()
    bucket_bytes = (bucket_elems or KNEE_ELEMS) * elem_size
    passes.bucket_collectives(optimized, bucket_bytes=bucket_bytes)
    passes.reorder_for_overlap(optimized, memory_budget=memory_budget)
    passes.eliminate_dead_waits(optimized)
    if verify:
        verify_schedule(captured, optimized)
    schedule = CompiledSchedule(optimized)
    schedule.captured = captured
    return schedule
