"""Compiler passes over the captured FSDP step graph.

Three rewrites, applied in order:

1. :func:`bucket_collectives` — greedily merges *adjacent* small
   AllGathers (and, matching, ReduceScatters) into coalesced buckets
   until each bucket crosses the Figure-2 communication knee (~33M
   elements), where per-collective launch overhead stops dominating.
   Adjacency is consumption order, so a bucket's members are consumed
   back-to-back and the merged gather wastes no prefetch distance.
2. :func:`reorder_for_overlap` — moves each AllGather bucket to its
   earliest-safe trigger (one bucket ahead of the consuming compute,
   software-pipelined) and pins each ReduceScatter bucket latest-safe
   (its last member's post-backward), maximizing comm/compute overlap
   subject to the captured dependency edges and an optional memory
   budget proved against the activation-liveness annotations.
3. :func:`eliminate_dead_waits` — removes compute-stream waits whose
   target bucket an earlier program point already waited on; the
   compute stream is totally ordered, so a second wait is a no-op.

Passes mutate the graph in place (marking nodes ``removed`` rather
than deleting, so ids stay stable) and return it; every rewrite is
re-proved against the pristine capture by :mod:`repro.compile.verify`.
"""

from __future__ import annotations

from typing import Optional

from repro.compile.ir import Graph, Node, NodeKind

__all__ = [
    "KNEE_ELEMS",
    "bucket_collectives",
    "eliminate_dead_waits",
    "estimate_peak_bytes",
    "reorder_for_overlap",
]

#: Figure 2 knee: beyond ~33M FP32 elements per collective the ring is
#: bandwidth-bound and further coalescing stops paying.
KNEE_ELEMS = 33_554_432


def _first_consumer(graph: Graph) -> dict:
    """Map AllGather node id -> (position, trigger) of its first wait.

    Consumption order is what bucketing and pipelining must follow; it
    can differ from *issue* order (backward prefetch issues along the
    reversed forward order, but autograd may reach sibling units — say
    attention's q/k/v projections — in another order entirely).
    """
    positions = graph.positions()
    first: dict = {}
    for wait in graph.live(NodeKind.WAIT):
        pos = positions[tuple(wait.trigger)]
        if wait.target not in first or pos < first[wait.target][0]:
            first[wait.target] = (pos, tuple(wait.trigger))
    return first


def _merge_runs(nodes: list, bucket_bytes: int) -> list:
    """Partition consumption-ordered collectives into adjacent buckets.

    A bucket closes once its payload crosses ``bucket_bytes`` (so every
    non-final bucket is at or above the knee) or when the next node is
    incompatible (different process group or wire dtype — SPMD peers
    must agree on one merged launch, and mixed dtypes cannot share a
    contiguous payload).
    """
    buckets: list = []
    current: list = []
    current_bytes = 0
    key = None
    for node in nodes:
        node_key = (node.group_key, node.dtype)
        if current and (node_key != key or current_bytes >= bucket_bytes):
            buckets.append(current)
            current = []
            current_bytes = 0
        current.append(node)
        current_bytes += node.nbytes
        key = node_key
    if current:
        buckets.append(current)
    return buckets


def _coalesce(graph: Graph, members: list, *, trigger_from_last: bool) -> Node:
    rep = members[0]
    if len(members) > 1:
        rep.units = tuple(m.unit for m in members)
        rep.member_nbytes = tuple(m.nbytes for m in members)
        rep.nbytes = sum(m.nbytes for m in members)
        rep.alloc_bytes = sum(m.alloc_bytes for m in members)
        for m in members:
            rep.deps |= m.deps
        if trigger_from_last:
            rep.trigger = members[-1].trigger
        absorbed = {m.id for m in members[1:]}
        for m in members[1:]:
            m.removed = True
        for wait in graph.live(NodeKind.WAIT):
            if wait.target in absorbed:
                wait.target = rep.id
                wait.deps = {rep.id}
    return rep


def bucket_collectives(graph: Graph, *, bucket_bytes: int) -> Graph:
    """Merge adjacent compatible collectives until buckets cross the knee."""
    merged = {"all_gather": 0, "reduce_scatter": 0}
    first = _first_consumer(graph)
    positions = graph.positions()
    for phase in ("forward", "backward"):
        gathers = [n for n in graph.live(NodeKind.ALL_GATHER) if n.phase == phase]
        # Merge along *consumption* order so bucket members are needed
        # back-to-back (never-consumed gathers sort by issue point).
        gathers.sort(
            key=lambda n: first.get(n.id, (positions[tuple(n.trigger)], None))[0]
        )
        for members in _merge_runs(gathers, bucket_bytes):
            # An AllGather bucket issues where its *first* member issued
            # (earliest captured point that is trivially safe); the
            # reorder pass then pipelines it earlier.
            _coalesce(graph, members, trigger_from_last=False)
            merged["all_gather"] += len(members) - 1
    reduces = graph.live(NodeKind.REDUCE_SCATTER)
    for members in _merge_runs(reduces, bucket_bytes):
        # A ReduceScatter bucket can only fire once every member's
        # gradient exists: trigger at the *last* member's post-backward.
        _coalesce(graph, members, trigger_from_last=True)
        merged["reduce_scatter"] += len(members) - 1
    graph.stats["bucket_bytes"] = bucket_bytes
    graph.stats["collectives_merged"] = merged
    graph.stats["all_gather_buckets"] = len(graph.live(NodeKind.ALL_GATHER))
    graph.stats["reduce_scatter_buckets"] = len(graph.live(NodeKind.REDUCE_SCATTER))
    return graph


def estimate_peak_bytes(graph: Graph) -> int:
    """Walk the schedule's program points and bound transient memory.

    Counts unsharded parameter storage (allocated when a bucket issues,
    freed at the captured reshard point) plus activation memory: a
    unit's ``saved_bytes`` accrue at its post-forward and release at
    its post-backward, its ``transient_bytes`` spike only inside its
    own forward.  Persistent state (shards, optimizer) is schedule-
    invariant and excluded — the budget bounds what the *schedule*
    controls.
    """
    positions = graph.positions()
    deltas: dict = {}

    def bump(pos: int, amount: int) -> None:
        deltas[pos] = deltas.get(pos, 0) + amount

    for node in graph.live(NodeKind.ALL_GATHER):
        bump(positions[tuple(node.trigger)], node.alloc_bytes)
    for node in graph.live(NodeKind.RESHARD):
        bump(positions[tuple(node.trigger)], -node.free_bytes)
    for node in graph.live(NodeKind.COMPUTE_FWD):
        pre = positions[("pre_forward", node.unit)]
        post = positions[("post_forward", node.unit)]
        bump(pre, node.transient_bytes)
        bump(post, -node.transient_bytes)
        bump(post, node.saved_bytes)
        if ("post_backward", node.unit) in positions:
            bump(positions[("post_backward", node.unit)], -node.saved_bytes)
    live = 0
    peak = 0
    for pos in sorted(deltas):
        live += deltas[pos]
        peak = max(peak, live)
    return peak


def reorder_for_overlap(
    graph: Graph,
    *,
    memory_budget: Optional[int] = None,
) -> Graph:
    """Pipeline AllGather buckets one-ahead; pin ReduceScatters latest-safe.

    Forward bucket 0 issues at ``iter_begin`` (overlapping whatever the
    host does before the first kernel); bucket *j* issues when bucket
    *j-1*'s first member starts computing, so exactly one bucket of
    communication runs behind the current bucket's compute — the
    compiled analogue of Section 3.3's prefetching, but at bucket
    granularity and provably safe.  Backward buckets pipeline the same
    way off pre-backward points.  If a ``memory_budget`` is given and
    the liveness walk shows the pipelined schedule exceeding it,
    forward buckets are demoted back to their own first consumer's
    trigger (eager position) earliest-first until the estimate fits.
    """
    first = _first_consumer(graph)

    def pipelined(buckets: list, head_trigger) -> list:
        """One-ahead schedule along consumption order: bucket *j*
        issues where bucket *j-1*'s first consumer starts computing.
        Buckets nobody waits on keep their captured trigger."""
        consumed = sorted(
            (b for b in buckets if b.id in first), key=lambda b: first[b.id][0]
        )
        for j, bucket in enumerate(consumed):
            if j == 0:
                bucket.trigger = head_trigger or first[bucket.id][1]
            else:
                bucket.trigger = first[consumed[j - 1].id][1]
        return consumed

    forward = [n for n in graph.live(NodeKind.ALL_GATHER) if n.phase == "forward"]
    backward = [n for n in graph.live(NodeKind.ALL_GATHER) if n.phase == "backward"]
    pipelined(forward, ("iter_begin", ""))
    # The first backward bucket cannot move before its own first
    # consumer: there is no earlier backward hook to fire from.
    pipelined(backward, None)
    for node in graph.live(NodeKind.REDUCE_SCATTER):
        node.trigger = ("post_backward", node.units[-1])
    demoted = 0
    if memory_budget is not None:
        for bucket in sorted(
            (b for b in forward if b.id in first), key=lambda b: first[b.id][0]
        ):
            if estimate_peak_bytes(graph) <= memory_budget:
                break
            own_trigger = first[bucket.id][1]
            if tuple(bucket.trigger) == own_trigger:
                continue
            bucket.trigger = own_trigger
            demoted += 1
    graph.stats["memory_budget"] = memory_budget
    graph.stats["buckets_demoted"] = demoted
    graph.stats["peak_bytes_estimate"] = estimate_peak_bytes(graph)
    return graph


def eliminate_dead_waits(graph: Graph) -> Graph:
    """Drop compute-stream waits on buckets already waited for.

    The compute stream is a single in-order queue: once it has waited
    on a bucket's completion event, every later kernel is ordered after
    that bucket and re-waiting buys nothing.  Waits execute at their
    trigger points, so walking them in program-point order with a
    per-iteration seen-set is exact.
    """
    positions = graph.positions()
    waits = sorted(
        graph.live(NodeKind.WAIT), key=lambda w: positions[tuple(w.trigger)]
    )
    seen: set = set()
    removed = 0
    for wait in waits:
        if wait.target in seen:
            wait.removed = True
            removed += 1
        else:
            seen.add(wait.target)
    graph.stats["dead_waits_removed"] = removed
    return graph
