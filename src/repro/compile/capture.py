"""Record one eager FSDP iteration into a :class:`~repro.compile.ir.Graph`.

The runtime installs a :class:`CaptureHook` for the first training
iteration; the unit hooks call back at each lifecycle point while the
eager machinery runs unmodified.  After a complete iteration
(``on_finalize`` seen), :meth:`CaptureHook.graph` rebuilds the captured
events into IR nodes with dependency and wait edges.

Capture refuses structures the compiler cannot replay: a unit whose
forward runs twice in one iteration (activation-checkpoint recompute
re-enters ``pre_forward`` and would re-fire its collectives at
positions the schedule cannot represent) marks the capture unsupported
and the runtime stays eager.
"""

from __future__ import annotations

from typing import Optional

from repro.compile.ir import Graph, NodeKind
from repro.errors import FsdpError

__all__ = ["CaptureHook"]


class CaptureHook:
    """Flat event recorder driven by the FSDP unit hooks.

    ``liveness`` maps unit label -> ``(saved_bytes, transient_bytes)``
    activation footprints (from ``ModelTrace.per_unit``); used to prove
    reorderings memory-safe in :func:`repro.compile.passes.reorder_for_overlap`.
    """

    def __init__(self, *, liveness: Optional[dict] = None):
        self.liveness = dict(liveness or {})
        self._events: list = []
        self._seen_forward: set = set()
        self.complete = False
        #: Human-readable reason capture cannot be compiled, or None.
        self.unsupported: Optional[str] = None

    # ------------------------------------------------------------------
    # Recording callbacks (invoked from FsdpUnit / FsdpRuntime hooks)
    # ------------------------------------------------------------------
    def on_iteration_begin(self) -> None:
        self._events = []
        self._seen_forward = set()
        self.complete = False
        self.unsupported = None

    def on_pre_forward(self, label: str) -> None:
        if label in self._seen_forward:
            self.unsupported = (
                f"unit {label!r} ran forward twice in one iteration "
                "(activation checkpointing recompute?); the compiler "
                "requires single-pass steps"
            )
        self._seen_forward.add(label)
        self._events.append(("pre_forward", label))

    def on_post_forward(self, label: str) -> None:
        self._events.append(("post_forward", label))

    def on_unshard_issue(
        self, label: str, *, reason: str, nbytes: int, group_key: int, dtype: str
    ) -> None:
        self._events.append(("unshard", label, reason, nbytes, group_key, dtype))

    def on_wait(self, label: str) -> None:
        self._events.append(("wait", label))

    def on_reshard(self, label: str, nbytes: int) -> None:
        self._events.append(("reshard", label, nbytes))

    def on_pre_backward(self, label: str) -> None:
        self._events.append(("pre_backward", label))

    def on_post_backward(
        self, label: str, *, nbytes: int, group_key: int, dtype: str
    ) -> None:
        self._events.append(("post_backward", label, nbytes, group_key, dtype))

    def on_finalize(self) -> None:
        self._events.append(("finalize",))
        self.complete = True

    # ------------------------------------------------------------------
    # IR construction
    # ------------------------------------------------------------------
    def graph(self) -> Graph:
        """Build a fresh Graph from the captured events.

        Each call returns an independent graph, so the compiler keeps a
        pristine captured copy for the verifier while passes mutate a
        second one.
        """
        if not self.complete:
            raise FsdpError("capture incomplete: no finalized iteration recorded")
        if self.unsupported:
            raise FsdpError(f"capture not compilable: {self.unsupported}")
        g = Graph()
        begin = g.add(NodeKind.ITER_BEGIN, trigger=("iter_begin", ""))
        point = ("iter_begin", "")
        g.point_order.append(point)
        in_backward = False
        last_compute = begin.id
        compute_of: dict = {}  # (phase, label) -> compute node id
        latest_ag: dict = {}  # label -> most recent ALL_GATHER node id
        reduce_ids: list = []
        for event in self._events:
            kind = event[0]
            if kind == "pre_forward":
                label = event[1]
                point = ("pre_forward", label)
                g.point_order.append(point)
                saved, transient = self.liveness.get(label, (0, 0))
                node = g.add(
                    NodeKind.COMPUTE_FWD,
                    unit=label,
                    trigger=point,
                    deps={last_compute},
                    saved_bytes=saved,
                    transient_bytes=transient,
                )
                compute_of[("forward", label)] = node.id
                last_compute = node.id
            elif kind == "post_forward":
                point = ("post_forward", event[1])
                g.point_order.append(point)
            elif kind == "pre_backward":
                label = event[1]
                point = ("pre_backward", label)
                g.point_order.append(point)
                in_backward = True
                node = g.add(
                    NodeKind.COMPUTE_BWD,
                    unit=label,
                    trigger=point,
                    deps={last_compute},
                )
                compute_of[("backward", label)] = node.id
                last_compute = node.id
            elif kind == "unshard":
                label, reason, nbytes, group_key, dtype = event[1:]
                node = g.add(
                    NodeKind.ALL_GATHER,
                    unit=label,
                    units=(label,),
                    nbytes=nbytes,
                    member_nbytes=(nbytes,),
                    reason=reason,
                    phase="backward" if in_backward else "forward",
                    trigger=point,
                    deps={begin.id},
                    group_key=group_key,
                    dtype=dtype,
                    alloc_bytes=nbytes,
                )
                latest_ag[label] = node.id
            elif kind == "wait":
                label = event[1]
                target = latest_ag.get(label)
                if target is None:
                    continue
                wait = g.add(
                    NodeKind.WAIT,
                    unit=label,
                    trigger=point,
                    target=target,
                    deps={target},
                )
                consumer = compute_of.get(
                    ("backward" if in_backward else "forward", label)
                )
                if consumer is not None:
                    g.node(consumer).deps.add(wait.id)
            elif kind == "reshard":
                label, nbytes = event[1:]
                g.add(
                    NodeKind.RESHARD,
                    unit=label,
                    trigger=point,
                    free_bytes=nbytes,
                )
            elif kind == "post_backward":
                label, nbytes, group_key, dtype = event[1:]
                point = ("post_backward", label)
                g.point_order.append(point)
                producer = compute_of.get(("backward", label))
                deps = {producer} if producer is not None else {last_compute}
                node = g.add(
                    NodeKind.REDUCE_SCATTER,
                    unit=label,
                    units=(label,),
                    nbytes=nbytes,
                    member_nbytes=(nbytes,),
                    phase="backward",
                    trigger=point,
                    deps=deps,
                    group_key=group_key,
                    dtype=dtype,
                )
                reduce_ids.append(node.id)
            elif kind == "finalize":
                g.point_order.append(("finalize", ""))
                g.add(
                    NodeKind.FINALIZE,
                    trigger=("finalize", ""),
                    deps={last_compute, *reduce_ids},
                )
        return g
