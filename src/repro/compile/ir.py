"""Captured IR of one FSDP training step.

The graph is a linearized record of everything one eager iteration
launched: per-unit forward/backward compute, every AllGather and
ReduceScatter with its payload size and process group, the
compute-stream waits that order kernels after their parameters'
AllGather, and the reshard frees that return unsharded storage to the
caching allocator.

Two properties make this IR sufficient for the compiler passes:

- FSDP communication has no *data* dependencies inside an iteration
  beyond ``iter_begin`` (an AllGather reads the local shard written by
  the previous optimizer step) and the producing backward compute (a
  ReduceScatter reads gradients), so collectives can move freely as
  long as every consumer keeps a wait edge and every producer stays
  upstream — exactly what :mod:`repro.compile.verify` checks;
- program order of compute nodes is fixed (the compiler never reorders
  compute), so scheduling reduces to picking a *trigger* program point
  for each collective.

Triggers are ``(point, unit_label)`` pairs naming CPU-side hook
positions the executor can act at: ``("iter_begin", "")``,
``("pre_forward", u)``, ``("post_forward", u)``, ``("pre_backward",
u)``, ``("post_backward", u)``, ``("finalize", "")``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Graph", "Node", "NodeKind", "Trigger"]

Trigger = tuple  # (point: str, unit_label: str)


class NodeKind(enum.Enum):
    ITER_BEGIN = "iter_begin"
    COMPUTE_FWD = "compute_fwd"
    COMPUTE_BWD = "compute_bwd"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    WAIT = "wait"
    RESHARD = "reshard"
    FINALIZE = "finalize"


@dataclass
class Node:
    id: int
    kind: NodeKind
    #: Owning unit label for compute/wait/reshard nodes; first bucket
    #: member for collectives.
    unit: str = ""
    #: Bucket members in consumption order (collectives only).  A
    #: freshly captured collective has exactly one member.
    units: tuple = ()
    #: Total collective payload in bytes (sum over members).
    nbytes: int = 0
    member_nbytes: tuple = ()
    #: Captured unshard reason ("forward", "pre_backward", ...).
    reason: str = ""
    #: "forward" | "backward" for AllGather nodes.
    phase: str = ""
    #: Program point where the node is issued / takes effect.
    trigger: Trigger = ("", "")
    #: IDs of nodes that must execute before this one.
    deps: set = field(default_factory=set)
    #: Process-group identity: collectives may only coalesce within one
    #: group (SPMD peers must agree on the merged launch).
    group_key: int = 0
    dtype: str = ""
    #: WAIT only: id of the collective whose event is waited on.
    target: int = -1
    #: Liveness accounting (bytes).  Collectives allocate their
    #: unsharded output at issue; reshard nodes free it.  Forward
    #: compute records the unit's activation footprint split into
    #: ``saved`` (held until the unit's backward) and ``transient``
    #: (live only inside the unit's own forward) — the split the
    #: ``saved=False`` trace fix feeds (see ModelTrace.per_unit).
    alloc_bytes: int = 0
    free_bytes: int = 0
    saved_bytes: int = 0
    transient_bytes: int = 0
    #: Set by passes instead of deleting, so node ids stay stable and
    #: WAIT targets / dep sets never dangle.
    removed: bool = False

    def describe(self) -> str:
        label = ",".join(self.units) if self.units else self.unit
        return f"{self.kind.value}[{label}]@{self.trigger}"


@dataclass
class Graph:
    nodes: list = field(default_factory=list)
    #: Pass-populated counters (buckets formed, dead waits removed,
    #: demotions, peak-memory estimate, ...).
    stats: dict = field(default_factory=dict)
    #: Chronological program-point sequence recorded at capture time.
    #: Nested units make this essential: the root's pre_backward fires
    #: first in backward but its post_backward fires *last*, so deriving
    #: order from per-node pre/post adjacency would misplace it.
    point_order: list = field(default_factory=list)

    def add(self, kind: NodeKind, **kwargs) -> Node:
        node = Node(id=len(self.nodes), kind=kind, **kwargs)
        self.nodes.append(node)
        return node

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def live(self, *kinds: NodeKind) -> list:
        return [
            n
            for n in self.nodes
            if not n.removed and (not kinds or n.kind in kinds)
        ]

    def positions(self) -> dict:
        """Map every trigger program point to its execution index.

        Waits and issues at a ``pre_*`` point happen before that unit's
        kernels; reshard frees at a ``post_*`` point happen after.  The
        index therefore orders "what has already run when the executor
        stands at this point".
        """
        if self.point_order:
            return {tuple(p): i for i, p in enumerate(self.point_order)}
        # Fallback for hand-built graphs (tests): assume each unit's
        # pre/post points are adjacent in node order.
        index: dict = {("iter_begin", ""): 0}
        for node in self.nodes:
            if node.kind is NodeKind.COMPUTE_FWD:
                index[("pre_forward", node.unit)] = len(index)
                index[("post_forward", node.unit)] = len(index)
            elif node.kind is NodeKind.COMPUTE_BWD:
                index[("pre_backward", node.unit)] = len(index)
                index[("post_backward", node.unit)] = len(index)
        index[("finalize", "")] = len(index)
        return index
