"""Hardware specifications and analytic cost models.

This package is the reproduction's stand-in for the paper's physical
testbed (A100-80GB hosts on a 2 Tb/s RoCE fat-tree).  It provides:

- :mod:`repro.hw.specs` — device, host and cluster descriptions;
- :mod:`repro.hw.kernel_model` — GPU kernel duration estimates;
- :mod:`repro.hw.comm_model` — NCCL-style collective cost model
  (ring algorithm, launch overheads, list-output copy penalties and the
  uneven-input broadcast fallback measured in Figure 2);
- :mod:`repro.hw.traffic` — closed-form cross-host traffic counters from
  Section 3.2.2.
"""

from repro.hw.specs import (
    A100_40GB,
    A100_80GB,
    ClusterTopology,
    GpuSpec,
    HostSpec,
    cluster_of,
)
from repro.hw.kernel_model import KernelCostModel
from repro.hw.comm_model import CollectiveKind, CommModel

__all__ = [
    "GpuSpec",
    "HostSpec",
    "ClusterTopology",
    "A100_80GB",
    "A100_40GB",
    "cluster_of",
    "KernelCostModel",
    "CommModel",
    "CollectiveKind",
]
