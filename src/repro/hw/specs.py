"""Device, host and cluster hardware specifications.

The numbers default to the paper's testbed: NVIDIA A100-80GB GPUs
(312 TFLOPS BF16 tensor core, 19.5 TFLOPS FP32, ~2 TB/s HBM), eight GPUs
per host connected by NVLink, hosts connected by a 2 Tb/s RoCE fat-tree
with oversubscription above the pod level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import dtypes

__all__ = [
    "GpuSpec",
    "HostSpec",
    "ClusterTopology",
    "A100_80GB",
    "A100_40GB",
    "DEFAULT_HOST",
    "cluster_of",
]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one accelerator.

    Attributes:
        name: marketing name, informational only.
        memory_bytes: device memory capacity (caching-allocator budget).
        peak_flops: map from dtype name to peak FLOP/s on that lane.
        mem_bandwidth: HBM bandwidth in bytes/s, drives elementwise ops.
        matmul_efficiency: fraction of peak a large GEMM achieves.
        kernel_launch_cpu: seconds of CPU time to launch one kernel.
        kernel_min_duration: floor for any GPU kernel duration.
    """

    name: str
    memory_bytes: int
    peak_flops: dict[str, float]
    mem_bandwidth: float
    matmul_efficiency: float = 0.62
    kernel_launch_cpu: float = 6.0e-6
    kernel_min_duration: float = 2.0e-6

    def peak_for(self, dtype: dtypes.DType) -> float:
        """Peak FLOP/s for a compute dtype (falls back to float32)."""
        return self.peak_flops.get(dtype.name, self.peak_flops["float32"])

    def matmul_flops_per_s(self, dtype: dtypes.DType) -> float:
        """Sustained GEMM throughput for ``dtype``."""
        return self.peak_for(dtype) * self.matmul_efficiency


A100_80GB = GpuSpec(
    name="A100-SXM4-80GB",
    memory_bytes=80 * 2**30,
    peak_flops={
        "bfloat16": 312e12,
        "float16": 312e12,
        # FP32 matmuls ride the TF32 tensor-core path (PyTorch default
        # on A100); the paper quotes the 312 TFLOPS BF16 peak when
        # computing utilization.
        "float32": 156e12,
        "float64": 19.5e12,
    },
    mem_bandwidth=2.0e12,
)

A100_40GB = GpuSpec(
    name="A100-SXM4-40GB",
    memory_bytes=40 * 2**30,
    peak_flops=dict(A100_80GB.peak_flops),
    mem_bandwidth=1.55e12,
)


@dataclass(frozen=True)
class HostSpec:
    """One machine: a set of GPUs behind NVLink and a RoCE NIC.

    Attributes:
        gpus_per_host: accelerators per machine.
        nvlink_bandwidth: per-GPU NVLink ring bandwidth (bytes/s)
            available to collectives that stay inside the host.
        nic_bandwidth: total host network bandwidth (bytes/s); the
            paper's testbed uses a 2 Tb/s RoCE fabric.
    """

    gpus_per_host: int = 8
    nvlink_bandwidth: float = 250e9
    # 2 Tb/s RoCE == 250 GB/s raw; ~80% effective RDMA/NCCL efficiency.
    nic_bandwidth: float = 200e9


DEFAULT_HOST = HostSpec()


@dataclass(frozen=True)
class ClusterTopology:
    """A fat-tree cluster of identical hosts.

    Locality levels (Section 3.2.2): GPUs within one host talk over
    NVLink; hosts within one pod talk at full NIC bandwidth; traffic
    crossing pods is divided by ``oversubscription``.  ``jitter``
    models straggler effects and network interference that grow with
    collective world size.

    Attributes:
        num_hosts: number of machines.
        gpu: per-GPU spec.
        host: per-host spec.
        pod_hosts: hosts per fully-provisioned pod.
        oversubscription: bandwidth division factor above the pod level.
        jitter_per_log2_ranks: fractional latency/bandwidth penalty per
            doubling of the collective's world size.
    """

    num_hosts: int
    gpu: GpuSpec = A100_80GB
    host: HostSpec = DEFAULT_HOST
    pod_hosts: int = 64
    oversubscription: float = 2.0
    jitter_per_log2_ranks: float = 0.012

    @property
    def world_size(self) -> int:
        return self.num_hosts * self.host.gpus_per_host

    def rank_to_host(self, rank: int) -> int:
        """Host index for a global rank (ranks are laid out host-major)."""
        self._check_rank(rank)
        return rank // self.host.gpus_per_host

    def rank_to_local(self, rank: int) -> int:
        """Local (intra-host) index of a global rank."""
        self._check_rank(rank)
        return rank % self.host.gpus_per_host

    def hosts_spanned(self, ranks: Iterable[int]) -> set[int]:
        """Set of host indices touched by a group of ranks."""
        return {self.rank_to_host(r) for r in ranks}

    def pods_spanned(self, ranks: Iterable[int]) -> set[int]:
        """Set of pod indices touched by a group of ranks."""
        return {h // self.pod_hosts for h in self.hosts_spanned(ranks)}

    def ring_bandwidth(self, ranks: Sequence[int]) -> float:
        """Ring (algorithm) bandwidth for a collective over ``ranks``.

        - All ranks on one host: NVLink bandwidth.
        - Spanning hosts with ranks laid out host-major (NCCL's ring
          construction): intra-host hops ride NVLink and each host NIC
          carries one pipelined in/out flow, so the ring sustains
          ``min(nvlink, nic)`` — multi-node algorithm bandwidth tracks
          the per-host NIC, not NIC divided by local GPUs.
        - Spanning pods: divided by the fat-tree oversubscription.

        Groups with *one member per host* (hybrid sharding's replicate
        groups) also get the NIC rate here; their mutual contention is
        expressed via the cost model's ``concurrent_groups``.
        """
        ranks = list(ranks)
        if not ranks:
            raise ValueError("ring_bandwidth requires a non-empty group")
        hosts = self.hosts_spanned(ranks)
        if len(hosts) == 1:
            return self.host.nvlink_bandwidth
        bandwidth = min(self.host.nvlink_bandwidth, self.host.nic_bandwidth)
        if len(self.pods_spanned(ranks)) > 1:
            bandwidth /= self.oversubscription
        return bandwidth

    def shard_group_ranks(self, sharding_factor: int) -> list[int]:
        """Global ranks of the first shard group at a sharding factor.

        Shard groups are contiguous rank blocks (host-major layout, see
        :func:`repro.fsdp.sharding.make_process_groups`), so the first
        block is representative for cost queries: the autotune planner
        prices a candidate's AllGather/ReduceScatter over these ranks
        without constructing process groups.
        """
        factor = min(max(1, sharding_factor), self.world_size)
        return list(range(factor))

    def replicate_group_ranks(self, sharding_factor: int) -> list[int]:
        """Global ranks of the first replicate group at a sharding factor.

        One rank per shard block (stride ``F``); under hybrid sharding
        the gradient all-reduce runs over these ranks, ``F`` sibling
        groups sharing the NICs concurrently.
        """
        factor = min(max(1, sharding_factor), self.world_size)
        return list(range(0, self.world_size, factor))

    def jitter_factor(self, group_size: int) -> float:
        """Multiplicative slowdown from stragglers at a world size."""
        if group_size <= 1:
            return 1.0
        return 1.0 + self.jitter_per_log2_ranks * math.log2(group_size)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")


def cluster_of(world_size: int, *, gpu: GpuSpec = A100_80GB, host: HostSpec = DEFAULT_HOST, **kwargs) -> ClusterTopology:
    """Build the smallest cluster holding ``world_size`` GPUs.

    Mirrors the paper's experiment grid where world sizes are multiples
    of the 8-GPU host (8, 16, ... 512).  World sizes below one host are
    modelled as a partially-populated single host.
    """
    if world_size <= 0:
        raise ValueError("world_size must be positive")
    gpus_per_host = host.gpus_per_host
    if world_size < gpus_per_host:
        host = HostSpec(
            gpus_per_host=world_size,
            nvlink_bandwidth=host.nvlink_bandwidth,
            nic_bandwidth=host.nic_bandwidth,
        )
        return ClusterTopology(num_hosts=1, gpu=gpu, host=host, **kwargs)
    if world_size % gpus_per_host:
        raise ValueError(
            f"world_size {world_size} is not a multiple of gpus_per_host {gpus_per_host}"
        )
    return ClusterTopology(num_hosts=world_size // gpus_per_host, gpu=gpu, host=host, **kwargs)
