"""Closed-form cross-host traffic counters from Section 3.2.2.

For a model of ``M`` bytes trained on ``W`` GPUs grouped into hosts of
``G`` GPUs, the paper derives the per-GPU cross-host traffic per
iteration for the three sharding regimes:

- full replication (DDP): an all-reduce of the full gradient,
  ``2 M (W - 1) / W``;
- full sharding: an all-gather in forward, an all-gather in backward
  and a reduce-scatter, ``3 M (W - 1) / W``;
- hybrid sharding with the shard group confined to a host: only the
  replicate-group all-reduce of the ``M / G`` shard crosses hosts,
  which the paper approximates as ``2 M (W - 1) / (G W)``.

These formulas only count bytes that leave a host; intra-host NVLink
traffic is excluded.  ``exact=True`` returns the un-approximated hybrid
expression ``2 (M / G) (W/G - 1) / (W/G)`` (the paper rounds
``W - G`` to ``W - 1``), which the tests cross-check against the
simulator's byte counters.
"""

from __future__ import annotations

__all__ = [
    "full_replication_cross_host_bytes",
    "full_sharding_cross_host_bytes",
    "hybrid_sharding_cross_host_bytes",
]


def _check(model_bytes: float, world_size: int) -> None:
    if model_bytes < 0:
        raise ValueError("model_bytes must be non-negative")
    if world_size < 1:
        raise ValueError("world_size must be >= 1")


def full_replication_cross_host_bytes(model_bytes: float, world_size: int) -> float:
    """Per-GPU cross-host bytes per iteration under full replication."""
    _check(model_bytes, world_size)
    return 2.0 * model_bytes * (world_size - 1) / world_size


def full_sharding_cross_host_bytes(model_bytes: float, world_size: int) -> float:
    """Per-GPU cross-host bytes per iteration under full sharding.

    Two all-gathers (forward, backward) plus one reduce-scatter.
    """
    _check(model_bytes, world_size)
    return 3.0 * model_bytes * (world_size - 1) / world_size


def hybrid_sharding_cross_host_bytes(
    model_bytes: float,
    world_size: int,
    gpus_per_host: int,
    *,
    exact: bool = False,
) -> float:
    """Per-GPU cross-host bytes per iteration under hybrid sharding.

    Assumes the sharding group equals one host (sharding factor
    ``F == gpus_per_host``), so all-gathers and reduce-scatters stay on
    NVLink and only the replicate-group all-reduce crosses hosts.
    """
    _check(model_bytes, world_size)
    if gpus_per_host < 1 or world_size % gpus_per_host:
        raise ValueError("world_size must be a multiple of gpus_per_host")
    num_replicas = world_size // gpus_per_host
    if num_replicas == 1:
        return 0.0
    shard_bytes = model_bytes / gpus_per_host
    if exact:
        return 2.0 * shard_bytes * (num_replicas - 1) / num_replicas
    # Paper's approximation: 2 M (W - 1) / (G W).
    return 2.0 * model_bytes * (world_size - 1) / (gpus_per_host * world_size)
