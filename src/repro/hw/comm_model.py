"""NCCL-style collective communication cost model.

The model reproduces the measured behaviours from Figure 2 of the paper:

- ring algorithm costs with per-step latency and a bottleneck bandwidth
  derived from the cluster topology (NVLink inside a host, shared NIC
  across hosts, oversubscribed spine across pods);
- a fixed per-collective launch overhead, which makes many small
  collectives slower than few large ones (Figure 2(b): the knee near
  33M FP32 elements per all-gather);
- the extra copy cost of the list-output ``all_gather`` relative to
  ``all_gather_into_tensor`` ("All-Gather Base");
- the broadcast fallback that PyTorch's ProcessGroup uses for *uneven*
  input sizes, which is substantially slower (Figure 2(a)).

All durations are deterministic; straggler effects are modelled by the
topology's jitter factor, which grows with group size (Section 3.2.2's
observation that collectives at smaller world sizes perform better).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.hw.specs import ClusterTopology

__all__ = ["CollectiveKind", "CommModel", "CommCost"]


class CollectiveKind(enum.Enum):
    """Collective operations the runtime can issue."""

    ALL_GATHER_BASE = "all_gather_base"
    ALL_GATHER_LIST = "all_gather_list"
    ALL_GATHER_UNEVEN = "all_gather_uneven"
    REDUCE_SCATTER = "reduce_scatter"
    REDUCE_SCATTER_UNEVEN = "reduce_scatter_uneven"
    ALL_REDUCE = "all_reduce"
    BROADCAST = "broadcast"
    ALL_TO_ALL = "all_to_all"


@dataclass(frozen=True)
class CommCost:
    """Breakdown of one collective's simulated cost (seconds)."""

    launch: float
    latency: float
    transfer: float
    copy: float = 0.0

    @property
    def total(self) -> float:
        return self.launch + self.latency + self.transfer + self.copy


class CommModel:
    """Analytic collective costs over a :class:`ClusterTopology`.

    Costs are memoized: training loops price the same few hundred
    ``(kind, nbytes, ranks, concurrent_groups)`` shapes every iteration,
    so after the first iteration each collective costs one dict lookup
    instead of a full topology walk (``ring_bandwidth`` visits every
    rank).  Disable with ``cache=False`` for differential testing.

    Args:
        topology: cluster the collectives run on.
        launch_overhead: fixed CPU+enqueue cost per collective; the
            dominant term for small messages (Figure 2(b)).
        step_latency: per-ring-step latency (link + protocol).
        uneven_bandwidth_penalty: bandwidth derating of the broadcast
            fallback used for uneven inputs.
        cache: memoize :meth:`cost` results (deterministic model, pure
            function of the key — safe to share across groups).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        launch_overhead: float = 60e-6,
        step_latency: float = 4e-6,
        uneven_bandwidth_penalty: float = 1.6,
        cache: bool = True,
    ):
        self.topology = topology
        self.launch_overhead = launch_overhead
        self.step_latency = step_latency
        self.uneven_bandwidth_penalty = uneven_bandwidth_penalty
        self.cache_enabled = cache
        self._cost_cache: dict[tuple, CommCost] = {}

    # ------------------------------------------------------------------
    # Cost entry points
    # ------------------------------------------------------------------
    def cost(
        self,
        kind: CollectiveKind,
        nbytes: int,
        ranks: Sequence[int],
        *,
        concurrent_groups: int = 1,
        shard_nbytes: Sequence[int] | None = None,
    ) -> CommCost:
        """Cost of one collective.

        Args:
            kind: which collective.
            nbytes: the *unsharded* payload size in bytes — the size of
                the gathered output for all-gathers, of the full input
                for reduce-scatter/all-reduce, of the message for
                broadcast.
            ranks: global ranks participating.
            concurrent_groups: number of sibling groups using the same
                links simultaneously (e.g. the per-local-rank replicate
                groups of hybrid sharding); divides bandwidth.
            shard_nbytes: per-rank shard sizes for the uneven fallback.

        Returns:
            A :class:`CommCost` breakdown; ``.total`` is the duration.
        """
        if self.cache_enabled:
            key = (
                kind,
                nbytes,
                tuple(ranks),
                concurrent_groups,
                None if shard_nbytes is None else tuple(shard_nbytes),
            )
            cached = self._cost_cache.get(key)
            if cached is None:
                cached = self._compute_cost(
                    kind,
                    nbytes,
                    key[2],
                    concurrent_groups=concurrent_groups,
                    shard_nbytes=shard_nbytes,
                )
                self._cost_cache[key] = cached
            return cached
        return self._compute_cost(
            kind,
            nbytes,
            ranks,
            concurrent_groups=concurrent_groups,
            shard_nbytes=shard_nbytes,
        )

    def clear_cache(self) -> None:
        self._cost_cache.clear()

    def _compute_cost(
        self,
        kind: CollectiveKind,
        nbytes: int,
        ranks: Sequence[int],
        *,
        concurrent_groups: int = 1,
        shard_nbytes: Sequence[int] | None = None,
    ) -> CommCost:
        world = len(ranks)
        if world <= 0:
            raise ValueError("collective requires at least one rank")
        if world == 1:
            return CommCost(launch=self.launch_overhead, latency=0.0, transfer=0.0)

        bandwidth = self.topology.ring_bandwidth(ranks) / max(1, concurrent_groups)
        jitter = self.topology.jitter_factor(world)
        steps = world - 1
        ring_latency = steps * self.step_latency * jitter

        if kind in (CollectiveKind.ALL_GATHER_BASE, CollectiveKind.REDUCE_SCATTER):
            transfer = (steps / world) * nbytes / bandwidth * jitter
            return CommCost(self.launch_overhead, ring_latency, transfer)

        if kind is CollectiveKind.ALL_GATHER_LIST:
            base = self.cost(
                CollectiveKind.ALL_GATHER_BASE,
                nbytes,
                tuple(ranks),
                concurrent_groups=concurrent_groups,
            )
            # Copies between the consolidated buffer and the list of
            # output tensors: read + write of the full payload through
            # HBM, plus one small launch per output tensor.
            copy = 2.0 * nbytes / self.topology.gpu.mem_bandwidth
            copy += world * self.topology.gpu.kernel_launch_cpu
            return CommCost(base.launch, base.latency, base.transfer, copy)

        if kind is CollectiveKind.ALL_GATHER_UNEVEN:
            if shard_nbytes is None:
                shard_nbytes = [nbytes // world] * world
            if len(shard_nbytes) != world:
                raise ValueError("shard_nbytes must have one entry per rank")
            # ProcessGroup mimics the all-gather with one broadcast per
            # rank; each pays launch + full ring latency, and the
            # bandwidth term is derated (no pipelining across calls).
            # Size imbalance hurts further: the largest broadcast gates
            # the sequence while other ranks idle.
            launch = world * self.launch_overhead
            latency = world * ring_latency
            mean_shard = max(1.0, sum(shard_nbytes) / world)
            imbalance = max(shard_nbytes) / mean_shard if shard_nbytes else 1.0
            transfer = (
                sum(shard_nbytes)
                / bandwidth
                * self.uneven_bandwidth_penalty
                * (0.5 + 0.5 * imbalance)
                * jitter
            )
            return CommCost(launch, latency, transfer)

        if kind is CollectiveKind.REDUCE_SCATTER_UNEVEN:
            if shard_nbytes is None:
                shard_nbytes = [nbytes // world] * world
            if len(shard_nbytes) != world:
                raise ValueError("shard_nbytes must have one entry per rank")
            # Mirrors the uneven all-gather fallback: one reduce per
            # output chunk instead of a single pipelined ring, so every
            # chunk pays launch + ring latency, bandwidth is derated and
            # the largest chunk gates the sequence.
            launch = world * self.launch_overhead
            latency = world * ring_latency
            mean_shard = max(1.0, sum(shard_nbytes) / world)
            imbalance = max(shard_nbytes) / mean_shard if shard_nbytes else 1.0
            transfer = (
                sum(shard_nbytes)
                / bandwidth
                * self.uneven_bandwidth_penalty
                * (0.5 + 0.5 * imbalance)
                * jitter
            )
            return CommCost(launch, latency, transfer)

        if kind is CollectiveKind.ALL_REDUCE:
            # Ring all-reduce = reduce-scatter + all-gather.
            transfer = 2.0 * (steps / world) * nbytes / bandwidth * jitter
            return CommCost(self.launch_overhead, 2.0 * ring_latency, transfer)

        if kind is CollectiveKind.BROADCAST:
            transfer = nbytes / bandwidth * jitter
            return CommCost(self.launch_overhead, ring_latency, transfer)

        if kind is CollectiveKind.ALL_TO_ALL:
            transfer = (steps / world) * nbytes / bandwidth * jitter
            return CommCost(self.launch_overhead, ring_latency, transfer)

        raise ValueError(f"unhandled collective kind: {kind}")  # pragma: no cover

    def time(self, kind: CollectiveKind, nbytes: int, ranks: Sequence[int], **kwargs) -> float:
        """Duration in seconds (see :meth:`cost`)."""
        return self.cost(kind, nbytes, ranks, **kwargs).total

    def bus_bandwidth(self, kind: CollectiveKind, nbytes: int, ranks: Sequence[int], **kwargs) -> float:
        """Achieved bus bandwidth in bytes/s, per the nccl-tests busBw
        convention: ``busBw = nbytes * factor / time`` with a per-kind
        factor reflecting the bytes each rank actually moves over its
        links — ``(n-1)/n`` for all-gather / reduce-scatter / all-to-all,
        ``2(n-1)/n`` for all-reduce (ring RS + AG passes the data
        twice), ``1`` for broadcast.
        """
        duration = self.time(kind, nbytes, ranks, **kwargs)
        world = len(ranks)
        if world <= 1:
            return 0.0
        if kind is CollectiveKind.ALL_REDUCE:
            factor = 2.0 * (world - 1) / world
        elif kind is CollectiveKind.BROADCAST:
            factor = 1.0
        else:
            factor = (world - 1) / world
        return nbytes * factor / duration
