"""Analytic GPU kernel duration model.

Every tensor op in :mod:`repro.ops` reports its arithmetic cost (FLOPs)
and its memory traffic (bytes moved through HBM).  The kernel model
converts those into a simulated duration using a simple roofline:

    duration = max(flops / sustained_flops, bytes / mem_bandwidth,
                   kernel_min_duration)

Matmuls use the tensor-core lane for their dtype; elementwise and
reduction kernels are bandwidth-bound.  This level of fidelity is
sufficient for the paper's evaluation, which reports TFLOPS-per-GPU
ratios and scaling shapes rather than kernel-exact times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import dtypes
from repro.hw.specs import GpuSpec

__all__ = ["KernelCostModel", "KernelCost"]


@dataclass(frozen=True)
class KernelCost:
    """Cost declaration attached to a single kernel launch.

    Attributes:
        flops: floating point operations performed.
        bytes_moved: HBM traffic in bytes (reads + writes).
        is_matmul: route flops through the tensor-core lane.
    """

    flops: float = 0.0
    bytes_moved: float = 0.0
    is_matmul: bool = False


class KernelCostModel:
    """Maps :class:`KernelCost` declarations to durations on a GPU.

    Durations are memoized on ``(cost, dtype)`` — :class:`KernelCost`
    is a frozen dataclass, and models see the same few hundred shapes
    every training iteration.  Disable with ``cache=False`` for
    differential testing of the uncached path.
    """

    def __init__(self, gpu: GpuSpec, *, cache: bool = True):
        self.gpu = gpu
        self.cache_enabled = cache
        self._duration_cache: dict[tuple, float] = {}

    def duration(self, cost: KernelCost, dtype: dtypes.DType) -> float:
        """Simulated kernel duration in seconds."""
        if self.cache_enabled:
            key = (cost, dtype.name)
            cached = self._duration_cache.get(key)
            if cached is None:
                cached = self._compute_duration(cost, dtype)
                self._duration_cache[key] = cached
            return cached
        return self._compute_duration(cost, dtype)

    def _compute_duration(self, cost: KernelCost, dtype: dtypes.DType) -> float:
        gpu = self.gpu
        compute_time = 0.0
        if cost.flops:
            if cost.is_matmul:
                rate = gpu.matmul_flops_per_s(dtype)
            else:
                # Non-matmul FLOPs run on the vector units; approximate
                # them as bandwidth-limited alongside their traffic but
                # keep a compute floor of 1/10th tensor-core rate.
                rate = gpu.peak_for(dtype) * 0.1
            compute_time = cost.flops / rate
        memory_time = cost.bytes_moved / gpu.mem_bandwidth if cost.bytes_moved else 0.0
        return max(compute_time, memory_time, gpu.kernel_min_duration)

    def clear_cache(self) -> None:
        self._duration_cache.clear()

    def launch_overhead(self) -> float:
        """CPU time consumed issuing one kernel."""
        return self.gpu.kernel_launch_cpu
