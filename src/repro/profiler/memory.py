"""Memory timeline profiler: allocator counters at event granularity.

Every allocator event (block alloc/free, cudaMalloc, segment release,
injected pressure) produces one :class:`MemorySample` carrying the
three counter series of Figure 8 — ``allocated``, ``active``,
``reserved`` — plus per-stream breakdowns (cached pool bytes and
segment bytes per stream) and the profiler scope active at sample
time.  The scope is what turns a peak into an attribution: the sample
at the peak names the FlatParameter unit/phase (``unshard:<unit>``,
``backward:<unit>``, ...) whose allocation owned it.

Samples export as Chrome-trace **counter tracks** (``"ph": "C"``):

- ``mem.allocated`` / ``mem.active`` / ``mem.reserved`` — device-wide
  series, rendered by Perfetto as stacked area charts;
- ``mem.reserved.<stream>`` — one track per stream whose pool ever
  held a segment (the communication-stream over-allocation of §3.4 is
  directly visible as the ``fsdp-unshard`` track growing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MemorySample", "MemoryTimeline"]


@dataclass
class MemorySample:
    """Allocator counters at one event."""

    time: float
    reason: str  #: "alloc" | "free" | "release" | "pressure"
    allocated: int  #: live tensor bytes (requested sizes)
    active: int  #: allocated + freed-but-not-yet-reusable block bytes
    reserved: int  #: total cudaMalloc-ed segment bytes
    #: Free cached bytes per stream pool (stream_id -> bytes).
    pool_bytes: dict = field(default_factory=dict)
    #: Segment bytes per allocation stream (stream_id -> bytes); sums
    #: to ``reserved`` by construction (property-tested).
    reserved_by_stream: dict = field(default_factory=dict)
    #: Profiler scope stack at sample time ("|"-joined, "" = no scope).
    scope: str = ""

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "reason": self.reason,
            "allocated": self.allocated,
            "active": self.active,
            "reserved": self.reserved,
            "pool_bytes": dict(self.pool_bytes),
            "reserved_by_stream": dict(self.reserved_by_stream),
            "scope": self.scope,
        }


class MemoryTimeline:
    """Collects :class:`MemorySample` rows from one allocator."""

    def __init__(self):
        self.samples: list = []
        #: stream_id -> stream name (resolved at sample time so counter
        #: tracks carry readable names).
        self.stream_names: dict = {}

    # ------------------------------------------------------------------
    # Sampling (installed as ``allocator.sample_hook``)
    # ------------------------------------------------------------------
    def sample(self, allocator, time: float, reason: str, *, scope: str = "") -> None:
        stats = allocator.stats
        self.samples.append(
            MemorySample(
                time=time,
                reason=reason,
                allocated=stats.allocated_bytes,
                active=stats.active_bytes,
                reserved=stats.reserved_bytes,
                pool_bytes=allocator.pool_bytes_by_stream(),
                reserved_by_stream=allocator.reserved_bytes_by_stream(),
                scope=scope,
            )
        )
        for stream in allocator.device.streams:
            if stream.stream_id not in self.stream_names:
                self.stream_names[stream.stream_id] = stream.name or str(stream.stream_id)

    def clear(self) -> None:
        self.samples.clear()

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def peak(self, series: str = "active") -> Optional[MemorySample]:
        """The sample at the maximum of ``series`` (None when empty)."""
        if not self.samples:
            return None
        return max(self.samples, key=lambda s: getattr(s, series))

    def attribution(self, series: str = "active", *, top: int = 10) -> list:
        """Per-scope peak table: which unit/phase owned the high-water marks.

        Groups samples by the innermost scope element and reports each
        scope's maximum of ``series``, descending — the first row is
        the owner of the global peak.
        """
        per_scope: dict[str, MemorySample] = {}
        for sample in self.samples:
            key = sample.scope.rsplit("|", 1)[-1] or "(unscoped)"
            best = per_scope.get(key)
            if best is None or getattr(sample, series) > getattr(best, series):
                per_scope[key] = sample
        rows = [
            {
                "scope": key,
                "time": sample.time,
                series: getattr(sample, series),
                "allocated": sample.allocated,
                "reserved": sample.reserved,
            }
            for key, sample in per_scope.items()
        ]
        rows.sort(key=lambda r: r[series], reverse=True)
        return rows[:top]

    # ------------------------------------------------------------------
    # Chrome-trace counter tracks
    # ------------------------------------------------------------------
    def counter_events(self, *, pid: int = 0) -> list:
        """Chrome-trace ``"ph": "C"`` records for every sample."""
        events = []
        for sample in self.samples:
            ts = sample.time * 1e6
            events.append(
                {
                    "name": "mem.bytes",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {
                        "allocated": sample.allocated,
                        "active": sample.active,
                        "reserved": sample.reserved,
                    },
                }
            )
            for stream_id, nbytes in sorted(sample.reserved_by_stream.items()):
                name = self.stream_names.get(stream_id, str(stream_id))
                events.append(
                    {
                        "name": f"mem.reserved.{name}",
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "args": {"bytes": nbytes},
                    }
                )
        return events
