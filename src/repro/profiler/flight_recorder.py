"""Collective flight recorder (PyTorch flight-recorder style).

A :class:`FlightRecorder` keeps a bounded ring buffer of collective
records — one per (rank, logical collective) — with the kind, payload
bytes, stream, per-group sequence id and the simulated enqueue /
start / end times.  Because every rank of an SPMD program issues the
same collectives on the same groups in the same order, the per-rank
sequence numbers line up across ranks: record *seq=k* on rank 0 and
record *seq=k* on rank 3 are the same logical collective.

That alignment is what makes hang diagnosis possible: when a
:class:`repro.errors.CollectiveTimeoutError` fires (or on an explicit
:meth:`FlightRecorder.dump`), the recorder groups records by
``(group ranks, seq)`` and reports, for every collective still in
flight, which member ranks issued it and which are **missing** — the
rank that crashed or hung before reaching the rendezvous.

The recorder is installed on a device as ``device.flight_recorder``
(mirroring ``device.fault_injector``); process groups consult it on
every collective.  In the threaded backend all rank threads share one
recorder, so a single dump shows the whole world's state.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "CollectiveRecord",
    "InFlightCollective",
    "FlightDump",
    "FlightRecorder",
    "DEFAULT_FLIGHT_CAPACITY",
]

#: Default ring-buffer capacity (records, across all ranks sharing the
#: recorder).  PyTorch's flight recorder defaults to a few thousand
#: entries; collectives here are coarser (one per FSDP unit phase), so
#: a smaller ring still covers several iterations.
DEFAULT_FLIGHT_CAPACITY = 2048


@dataclass
class CollectiveRecord:
    """One rank's view of one logical collective."""

    index: int  #: global insertion order in this recorder
    seq: int  #: per-(rank, group) logical sequence number
    rank: int  #: global rank that issued the collective
    kind: str  #: collective kind ("all_gather_base", "reduce_scatter", ...)
    nbytes: int  #: payload bytes (the collective's tensor size)
    group_ranks: tuple  #: global ranks of the process group
    stream: str  #: name of the stream the collective runs on
    scope: str  #: profiler scope at issue time ("" when not profiling)
    issue_time: float  #: simulated CPU time the collective was issued
    start_time: Optional[float] = None  #: simulated GPU start (None = never launched)
    end_time: Optional[float] = None  #: simulated GPU completion

    @property
    def launched(self) -> bool:
        return self.start_time is not None

    def state(self, now: Optional[float] = None) -> str:
        if not self.launched:
            return "issued"
        if now is not None and self.end_time is not None and self.end_time > now:
            return "running"
        return "completed"

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "rank": self.rank,
            "kind": self.kind,
            "nbytes": self.nbytes,
            "group_ranks": list(self.group_ranks),
            "stream": self.stream,
            "scope": self.scope,
            "issue_time": self.issue_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }


@dataclass
class InFlightCollective:
    """One logical collective that has not completed on every rank."""

    kind: str
    seq: int
    group_ranks: tuple
    nbytes: int
    #: Ranks that issued the collective (their record exists).
    issued_ranks: tuple
    #: Ranks whose collective kernel launched (rendezvous succeeded).
    launched_ranks: tuple
    #: Group members with no record for this (group, seq) — the ranks a
    #: hang analysis points at: they crashed or hung before issuing.
    missing_ranks: tuple
    records: list = field(default_factory=list)

    def describe(self) -> str:
        text = (
            f"{self.kind} seq={self.seq} on ranks {list(self.group_ranks)} "
            f"({self.nbytes} bytes): issued by {list(self.issued_ranks)}"
        )
        if self.missing_ranks:
            text += f", MISSING ranks {list(self.missing_ranks)}"
        stalled = tuple(r for r in self.issued_ranks if r not in self.launched_ranks)
        if stalled:
            text += f", stalled (never launched) on {list(stalled)}"
        return text

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seq": self.seq,
            "group_ranks": list(self.group_ranks),
            "nbytes": self.nbytes,
            "issued_ranks": list(self.issued_ranks),
            "launched_ranks": list(self.launched_ranks),
            "missing_ranks": list(self.missing_ranks),
        }


@dataclass
class FlightDump:
    """Snapshot of the recorder's state at dump time."""

    time: Optional[float]
    total_recorded: int
    in_flight: list
    recent: list

    def render(self) -> str:
        lines = [
            f"flight recorder dump ({self.total_recorded} collectives recorded)"
        ]
        if not self.in_flight:
            lines.append("  no collectives in flight")
        for entry in self.in_flight:
            lines.append("  IN FLIGHT: " + entry.describe())
        for record in self.recent[-8:]:
            lines.append(
                f"  [{record.state(self.time):>9}] r{record.rank} "
                f"{record.kind} seq={record.seq} on {list(record.group_ranks)} "
                f"({record.nbytes}B, stream={record.stream})"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "time": self.time,
            "total_recorded": self.total_recorded,
            "in_flight": [entry.as_dict() for entry in self.in_flight],
            "recent": [record.as_dict() for record in self.recent],
        }


class FlightRecorder:
    """Ring buffer of issued/completed collectives, shared across ranks."""

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=capacity)
        # (rank, group_ranks) -> next sequence number.  SPMD ranks issue
        # identical collective sequences per group, so equal seq numbers
        # across ranks identify the same logical collective.
        self._seq: dict[tuple, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Recording (called by process groups)
    # ------------------------------------------------------------------
    def record_issue(
        self,
        *,
        rank: int,
        kind: str,
        nbytes: int,
        group_ranks: tuple,
        stream: str,
        time: float,
        scope: str = "",
    ) -> CollectiveRecord:
        """Record that ``rank`` issued a collective (pre-rendezvous)."""
        group_ranks = tuple(group_ranks)
        with self._lock:
            key = (rank, group_ranks)
            seq = self._seq.get(key, 0)
            self._seq[key] = seq + 1
            record = CollectiveRecord(
                index=self._counter,
                seq=seq,
                rank=rank,
                kind=kind,
                nbytes=nbytes,
                group_ranks=group_ranks,
                stream=stream,
                scope=scope,
                issue_time=time,
            )
            self._counter += 1
            self._records.append(record)
        return record

    def record_launch(self, record: CollectiveRecord, start: float, end: float) -> None:
        """Record that the collective's kernel was enqueued on the GPU."""
        record.start_time = start
        record.end_time = end

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def records(self) -> list:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def total_recorded(self) -> int:
        with self._lock:
            return self._counter

    def in_flight(self, now: Optional[float] = None) -> list:
        """Logical collectives not known complete on all member ranks.

        A collective is in flight when (a) some rank issued it but its
        kernel never launched — the rank is blocked in the rendezvous
        waiting for a peer that crashed or hung before issuing (those
        peers are the entry's ``missing_ranks``), or hit the watchdog
        itself — or (b) ``now`` is given and some rank's kernel has not
        finished by then.
        """
        groups: dict[tuple, list] = {}
        for record in self.records():
            key = (record.group_ranks, record.seq)
            groups.setdefault(key, []).append(record)
        out = []
        for (group_ranks, seq), records in sorted(groups.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            issued = tuple(sorted({r.rank for r in records}))
            launched = tuple(sorted({r.rank for r in records if r.launched}))
            missing = tuple(r for r in group_ranks if r not in issued)
            stalled = len(launched) < len(issued)
            still_running = now is not None and any(
                r.end_time is not None and r.end_time > now for r in records
            )
            if not (stalled or still_running):
                continue
            out.append(
                InFlightCollective(
                    kind=records[0].kind,
                    seq=seq,
                    group_ranks=group_ranks,
                    nbytes=records[0].nbytes,
                    issued_ranks=issued,
                    launched_ranks=launched,
                    missing_ranks=missing,
                    records=sorted(records, key=lambda r: r.rank),
                )
            )
        return out

    def dump(self, now: Optional[float] = None, *, recent: int = 32) -> FlightDump:
        """Snapshot the ring buffer plus the in-flight analysis."""
        records = self.records()
        return FlightDump(
            time=now,
            total_recorded=self.total_recorded,
            in_flight=self.in_flight(now),
            recent=records[-recent:],
        )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._seq.clear()
            self._counter = 0
