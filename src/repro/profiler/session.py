"""ProfilerSession: one object wiring all three observability layers.

A session installs itself on a simulated device the same way the fault
injector does — via attributes the runtime layers consult:

- ``device.trace_hook`` / ``device.mark_hook``: every kernel and
  collective span lands in :attr:`kernel_events` tagged with the
  current *scope* (see below); previously-installed hooks (e.g. a
  :class:`repro.perf.timeline.Tracer`) keep receiving events;
- ``device.allocator.sample_hook``: every allocator event produces a
  :class:`repro.profiler.memory.MemorySample`;
- ``device.flight_recorder``: process groups record issue/launch of
  every collective in the :class:`FlightRecorder` ring buffer;
- ``device.profiler``: the FSDP runtime pushes/pops **scopes**
  (``forward:<unit>``, ``backward:<unit>``, ``unshard:<unit>@<reason>``,
  ``reduce:<unit>``) and reports prefetch outcomes, reshard events and
  rate-limiter admissions.

Scopes are a stack, serialized as ``"outer|inner"``; the innermost
element attributes collectives and memory samples to a FlatParameter
unit and phase.  :meth:`finalize` then computes per-unit exposed vs.
overlapped communication by intersecting each unit's collective
intervals with the default (compute) stream's busy intervals.
"""

from __future__ import annotations

import contextlib
import json
import threading
from typing import Optional

from repro.perf.timeline import merge_intervals
from repro.profiler.flight_recorder import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from repro.profiler.memory import MemoryTimeline
from repro.profiler.stats import (
    KernelEvent,
    UnitProfile,
    UnshardIssue,
    exposed_overlapped,
    scope_leaf,
)

__all__ = ["ProfilerSession", "profile_device"]


def _unit_of_scope(leaf: str) -> Optional[str]:
    """Map a scope leaf to the unit label it attributes to (or None)."""
    if leaf.startswith("unshard:"):
        return leaf[len("unshard:") :].split("@", 1)[0]
    if leaf.startswith("reduce:"):
        return leaf[len("reduce:") :]
    if leaf.startswith("forward:") or leaf.startswith("backward:"):
        return leaf.split(":", 1)[1]
    if leaf.startswith("serve:batch@"):
        # Serving batch spans: collectives issued directly under the
        # span (e.g. DHEN's sparse all-to-all) attribute to a synthetic
        # per-replica serving unit; FSDP's own unshard/reduce scopes
        # nest deeper and keep their per-unit attribution.
        return "serve@" + leaf[len("serve:batch@") :]
    return None


class ProfilerSession:
    """Unified observability for one (or more) simulated devices."""

    def __init__(self, *, flight_capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.memory = MemoryTimeline()
        self.units: dict[str, UnitProfile] = {}
        self.kernel_events: list = []
        self.marks: list = []
        #: Unit labels in pre-backward order (per measured window).
        self.backward_order: list = []
        #: Rate-limiter depth observed at each AllGather admission
        #: (pending reshard-free events; in-flight AllGathers = depth+1).
        self.rate_limit_depths: list = []
        self.rate_limit_stall_s = 0.0
        #: Collective intervals regardless of unit attribution (totals).
        self.comm_intervals: list = []
        self._scopes: list = []
        self._prefetched: set = set()
        self._lock = threading.Lock()
        # id(device) -> (device, saved hook dict)
        self._installed: dict = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, device) -> None:
        """Attach to ``device`` (idempotent); chains existing hooks."""
        if id(device) in self._installed:
            return
        saved = {
            "trace_hook": device.trace_hook,
            "mark_hook": device.mark_hook,
            "profiler": getattr(device, "profiler", None),
            "flight_recorder": getattr(device, "flight_recorder", None),
            "sample_hook": None,
        }
        prev_trace = device.trace_hook
        prev_mark = device.mark_hook

        def trace(label, stream, start, end):
            self.on_kernel(label, stream, start, end)
            if prev_trace is not None:
                prev_trace(label, stream, start, end)

        def mark(label, time):
            self.marks.append((label, time))
            if prev_mark is not None:
                prev_mark(label, time)

        device.trace_hook = trace
        device.mark_hook = mark
        device.profiler = self
        if getattr(device, "flight_recorder", None) is None:
            device.flight_recorder = self.flight
        if device.allocator is not None:
            saved["sample_hook"] = device.allocator.sample_hook
            device.allocator.sample_hook = self._on_alloc_sample
        self._installed[id(device)] = (device, saved)

    def uninstall(self, device=None) -> None:
        """Restore the device's original hooks (all devices when None)."""
        keys = [id(device)] if device is not None else list(self._installed)
        for key in keys:
            entry = self._installed.pop(key, None)
            if entry is None:
                continue
            dev, saved = entry
            dev.trace_hook = saved["trace_hook"]
            dev.mark_hook = saved["mark_hook"]
            dev.profiler = saved["profiler"]
            dev.flight_recorder = saved["flight_recorder"]
            if dev.allocator is not None:
                dev.allocator.sample_hook = saved["sample_hook"]

    # ------------------------------------------------------------------
    # Scope stack
    # ------------------------------------------------------------------
    @property
    def scope(self) -> str:
        return "|".join(label for label, _ in self._scopes)

    def push_scope(self, label: str, *, pinned: bool = False) -> None:
        """Push a scope; ``pinned`` scopes survive iteration-boundary
        resets (outer spans like ``serve:batch@<replica>`` that enclose
        whole iterations rather than living inside one)."""
        self._scopes.append((label, pinned))

    def pop_scope(self, label: Optional[str] = None) -> None:
        """Pop the topmost matching scope; tolerant of imbalance.

        Backward hooks can fire in non-LIFO order under checkpoint
        recompute, so popping a label that is not on the stack is a
        no-op rather than an error.
        """
        if not self._scopes:
            return
        if label is None:
            self._scopes.pop()
            return
        for i in range(len(self._scopes) - 1, -1, -1):
            if self._scopes[i][0] == label:
                del self._scopes[i]
                return

    def reset_scopes(self) -> None:
        """Drop unpinned scopes (called at iteration boundaries)."""
        self._scopes = [entry for entry in self._scopes if entry[1]]

    @contextlib.contextmanager
    def scoped(self, label: str, *, pinned: bool = False):
        self.push_scope(label, pinned=pinned)
        try:
            yield
        finally:
            self.pop_scope(label)

    # ------------------------------------------------------------------
    # Event intake (hooks)
    # ------------------------------------------------------------------
    def on_kernel(self, label: str, stream: str, start: float, end: float) -> None:
        if end > start:
            self.kernel_events.append(KernelEvent(label, stream, start, end, self.scope))

    def _on_alloc_sample(self, allocator, time: float, reason: str) -> None:
        self.memory.sample(allocator, time, reason, scope=self.scope)

    def on_collective(self, record) -> None:
        """Attribute one launched collective (called by ProcessGroup)."""
        if record.start_time is None or record.end_time is None:
            return
        self.comm_intervals.append((record.start_time, record.end_time))
        label = _unit_of_scope(scope_leaf(record.scope))
        if label is None:
            return
        self.unit(label).record_collective(
            record.kind, record.nbytes, record.start_time, record.end_time, record.scope
        )

    # ------------------------------------------------------------------
    # FSDP runtime hooks
    # ------------------------------------------------------------------
    def unit(self, label: str) -> UnitProfile:
        with self._lock:
            profile = self.units.get(label)
            if profile is None:
                profile = self.units[label] = UnitProfile(label)
            return profile

    def on_unshard_issue(self, label: str, *, reason: str, time: float) -> None:
        self.unit(label).unshard_issues.append(
            UnshardIssue(reason=reason, time=time, parent_scope=self.scope)
        )
        if reason.endswith("prefetch"):
            self._prefetched.add(label)

    def on_prefetch_outcome(self, label: str, *, already_unsharded: bool) -> None:
        """Called by a unit's own pre-hook when prefetching is enabled.

        Hit: the unit was gathered by an earlier prefetch issue.  Miss:
        it was still sharded and must block on its own AllGather.  A
        unit unsharded for some other reason (e.g. SHARD_GRAD_OP keeps
        parameters through backward) counts as neither.
        """
        unit = self.unit(label)
        if label in self._prefetched:
            self._prefetched.discard(label)
            unit.prefetch_hits += 1
        elif not already_unsharded:
            unit.prefetch_misses += 1

    def on_pre_backward(self, label: str) -> None:
        self.backward_order.append(label)

    def on_reshard(self, label: str, time: float) -> None:
        self.unit(label).reshard_times.append(time)

    def on_rate_limit_admit(self, *, depth: int, stall_s: float) -> None:
        self.rate_limit_depths.append(depth)
        self.rate_limit_stall_s += stall_s
        label = _unit_of_scope(scope_leaf(self.scope))
        if label is not None:
            self.unit(label).rate_limit_stall_s += stall_s

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        """Drop warmup-phase data; keep hooks and the flight ring live."""
        self.kernel_events.clear()
        self.marks.clear()
        self.memory.clear()
        self.units.clear()
        self.backward_order.clear()
        self.rate_limit_depths.clear()
        self.rate_limit_stall_s = 0.0
        self.comm_intervals.clear()
        self._prefetched.clear()
        self._finalized = False

    def compute_intervals(self) -> list:
        """Merged busy intervals of the compute (default) stream."""
        return merge_intervals(
            (e.start, e.end) for e in self.kernel_events if "default" in e.stream
        )

    def finalize(self) -> None:
        """Compute exposed/overlapped splits for every unit (idempotent)."""
        if self._finalized:
            return
        compute = self.compute_intervals()
        for profile in self.units.values():
            exposed, overlapped = exposed_overlapped(
                ((c.start, c.end) for c in profile.comm_intervals), compute
            )
            profile.exposed_comm_s = exposed
            profile.overlapped_comm_s = overlapped
        self._finalized = True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def totals(self) -> dict:
        """Aggregate observability metrics (finalizes first)."""
        self.finalize()
        compute = self.compute_intervals()
        exposed, overlapped = exposed_overlapped(self.comm_intervals, compute)
        total = exposed + overlapped
        # Checkpoint D2H snapshots run on their own stream under a
        # ``checkpoint:`` scope; split against compute the same way as
        # communication so the exposed-vs-overlapped checkpoint cost is
        # a first-class line item.
        ckpt_intervals = merge_intervals(
            (e.start, e.end)
            for e in self.kernel_events
            if scope_leaf(e.scope).startswith("checkpoint:")
        )
        ckpt_exposed, ckpt_overlapped = exposed_overlapped(ckpt_intervals, compute)
        ckpt_total = ckpt_exposed + ckpt_overlapped
        return {
            "exposed_comm_s": exposed,
            "overlapped_comm_s": overlapped,
            "overlap_fraction": overlapped / total if total else 1.0,
            "checkpoint_exposed_s": ckpt_exposed,
            "checkpoint_overlapped_s": ckpt_overlapped,
            "checkpoint_overlap_fraction": (
                ckpt_overlapped / ckpt_total if ckpt_total else 1.0
            ),
            "allgather_bytes": sum(u.allgather_bytes for u in self.units.values()),
            "reduce_scatter_bytes": sum(u.reduce_scatter_bytes for u in self.units.values()),
            "prefetch_hits": sum(u.prefetch_hits for u in self.units.values()),
            "prefetch_misses": sum(u.prefetch_misses for u in self.units.values()),
            "rate_limit_stall_s": self.rate_limit_stall_s,
            "max_rate_limit_depth": max(self.rate_limit_depths, default=0),
        }

    def summary(self) -> dict:
        """JSON-able report: totals, per-unit table, memory attribution."""
        self.finalize()
        peak = self.memory.peak("active")
        return {
            "totals": self.totals(),
            "units": [
                self.units[label].as_dict() for label in sorted(self.units)
            ],
            "backward_order": list(self.backward_order),
            "memory": {
                "samples": len(self.memory.samples),
                "peak_active_bytes": peak.active if peak else 0,
                "peak_scope": scope_leaf(peak.scope) if peak else "",
                "attribution": self.memory.attribution("active", top=8),
            },
            "flight": {
                "recorded": self.flight.total_recorded,
                "in_flight": len(self.flight.in_flight()),
            },
        }

    def to_chrome_trace(self, path: str) -> None:
        """Write spans + instant marks + memory counter tracks."""
        records = [
            {
                "name": event.label,
                "ph": "X",
                "ts": event.start * 1e6,
                "dur": (event.end - event.start) * 1e6,
                "pid": 0,
                "tid": event.stream,
                "args": {"scope": event.scope} if event.scope else {},
            }
            for event in self.kernel_events
        ]
        records.extend(
            {"name": name, "ph": "i", "ts": time * 1e6, "pid": 0, "tid": "marks", "s": "g"}
            for name, time in self.marks
        )
        records.extend(self.memory.counter_events())
        with open(path, "w") as f:
            json.dump({"traceEvents": records}, f)


@contextlib.contextmanager
def profile_device(device, **kwargs):
    """Context manager: install a fresh session on ``device``, yield it."""
    session = ProfilerSession(**kwargs)
    session.install(device)
    try:
        yield session
    finally:
        session.uninstall(device)
