"""Per-unit FSDP statistics and the interval arithmetic behind them.

The stats glossary (also documented in DESIGN.md):

- **all-gather / reduce-scatter bytes**: payload bytes of collectives
  attributed to the unit via the profiler scope at issue time;
- **comm time**: summed durations of the unit's collective kernels;
- **exposed vs. overlapped comm**: the unit's merged communication
  intervals intersected with the compute (default) stream's busy
  intervals — overlapped time is hidden under computation, exposed
  time stalls the iteration (the quantity all of §3.3 optimizes);
- **prefetch hit/miss**: a hit is a unit whose pre-hook found its
  parameters already gathered by a prefetch issue; a miss had to issue
  its own blocking AllGather (the first backward unit is always a
  miss — that AllGather is exposed by construction, §3.3.2);
- **rate-limiter stall**: CPU time the §3.4 limiter spent blocked on
  reshard-free events before admitting the unit's AllGather.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.timeline import merge_intervals

__all__ = [
    "KernelEvent",
    "CommInterval",
    "UnshardIssue",
    "UnitProfile",
    "scope_leaf",
    "scope_parent",
    "exposed_overlapped",
]


def scope_leaf(scope: str) -> str:
    """Innermost element of a '|'-joined scope stack."""
    return scope.rsplit("|", 1)[-1]


def scope_parent(scope: str) -> str:
    """Element enclosing the innermost scope ('' at top level)."""
    parts = scope.split("|")
    return parts[-2] if len(parts) > 1 else ""


@dataclass
class KernelEvent:
    """One kernel/collective span recorded via the device trace hook."""

    label: str
    stream: str
    start: float
    end: float
    scope: str = ""


@dataclass
class CommInterval:
    """One collective kernel attributed to a unit."""

    kind: str
    start: float
    end: float
    scope: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class UnshardIssue:
    """One AllGather issue for a unit (forward, pre_backward, *_prefetch)."""

    reason: str
    time: float
    #: Scope enclosing the issue — for a backward prefetch this is the
    #: ``backward:<unit>`` whose gradient computation the AllGather is
    #: meant to overlap.
    parent_scope: str = ""


@dataclass
class UnitProfile:
    """Aggregated observability counters for one FSDP unit."""

    label: str
    allgather_count: int = 0
    allgather_bytes: int = 0
    reduce_scatter_count: int = 0
    reduce_scatter_bytes: int = 0
    all_reduce_count: int = 0
    all_reduce_bytes: int = 0
    comm_time_s: float = 0.0
    exposed_comm_s: float = 0.0  #: filled by ProfilerSession.finalize
    overlapped_comm_s: float = 0.0  #: filled by ProfilerSession.finalize
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    rate_limit_stall_s: float = 0.0
    unshard_issues: list = field(default_factory=list)
    comm_intervals: list = field(default_factory=list)
    reshard_times: list = field(default_factory=list)

    def record_collective(self, kind: str, nbytes: int, start: float, end: float, scope: str) -> None:
        if kind.startswith("all_gather"):
            self.allgather_count += 1
            self.allgather_bytes += nbytes
        elif kind == "reduce_scatter":
            self.reduce_scatter_count += 1
            self.reduce_scatter_bytes += nbytes
        elif kind == "all_reduce":
            self.all_reduce_count += 1
            self.all_reduce_bytes += nbytes
        self.comm_time_s += end - start
        self.comm_intervals.append(CommInterval(kind, start, end, scope))

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "allgather_count": self.allgather_count,
            "allgather_bytes": self.allgather_bytes,
            "reduce_scatter_count": self.reduce_scatter_count,
            "reduce_scatter_bytes": self.reduce_scatter_bytes,
            "all_reduce_count": self.all_reduce_count,
            "all_reduce_bytes": self.all_reduce_bytes,
            "comm_time_s": self.comm_time_s,
            "exposed_comm_s": self.exposed_comm_s,
            "overlapped_comm_s": self.overlapped_comm_s,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_misses": self.prefetch_misses,
            "rate_limit_stall_s": self.rate_limit_stall_s,
        }


def exposed_overlapped(
    comm_intervals, compute_intervals
) -> tuple[float, float]:
    """Split communication time into (exposed, overlapped) seconds.

    ``comm_intervals`` is any iterable of ``(start, end)``;
    ``compute_intervals`` must already be merged-disjoint (the output
    of :func:`repro.perf.timeline.merge_intervals`).  Overlapped time
    is the two-pointer intersection of the merged comm intervals with
    the compute intervals; exposed is the remainder, so the pair sums
    to the unit's *merged* comm span (self-overlap counted once).
    """
    comm = merge_intervals(comm_intervals)
    total = sum(end - start for start, end in comm)
    hidden = 0.0
    i = j = 0
    while i < len(comm) and j < len(compute_intervals):
        lo = max(comm[i][0], compute_intervals[j][0])
        hi = min(comm[i][1], compute_intervals[j][1])
        if hi > lo:
            hidden += hi - lo
        if comm[i][1] <= compute_intervals[j][1]:
            i += 1
        else:
            j += 1
    return total - hidden, hidden
