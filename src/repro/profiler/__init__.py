"""Observability layer: flight recorder, memory timeline, per-unit stats.

See DESIGN.md "Observability" for the architecture.  Typical use::

    from repro.profiler import ProfilerSession
    from repro.perf import SimConfig, simulate_training

    config = SimConfig(..., profile=True)
    result = simulate_training(config)
    report = result.extras["profiler"]  # totals, per-unit table, memory

or standalone on a device::

    with profile_device(device) as session:
        ...  # run work
    session.summary()
"""

from repro.profiler.flight_recorder import (
    DEFAULT_FLIGHT_CAPACITY,
    CollectiveRecord,
    FlightDump,
    FlightRecorder,
    InFlightCollective,
)
from repro.profiler.memory import MemorySample, MemoryTimeline
from repro.profiler.session import ProfilerSession, profile_device
from repro.profiler.stats import (
    CommInterval,
    KernelEvent,
    UnitProfile,
    UnshardIssue,
    exposed_overlapped,
    scope_leaf,
    scope_parent,
)

__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "CollectiveRecord",
    "FlightDump",
    "FlightRecorder",
    "InFlightCollective",
    "MemorySample",
    "MemoryTimeline",
    "ProfilerSession",
    "profile_device",
    "CommInterval",
    "KernelEvent",
    "UnitProfile",
    "UnshardIssue",
    "exposed_overlapped",
    "scope_leaf",
    "scope_parent",
]
