"""World management: launching SPMD ranks and creating groups.

Two entry points:

- :func:`spawn` — run a function on N rank *threads* with real data
  movement (tests, examples, numerical-equivalence checks);
- :func:`init_single_process` — set up one representative rank with the
  symmetric backend for paper-scale performance sweeps.

Within a rank, :func:`get_rank` / :func:`get_device` /
:func:`default_group` access the thread-local world, and
:func:`new_group` creates subgroups (hybrid sharding's sharded and
replicated groups, Section 3.2.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cuda.device import Device
from repro.distributed.fault import FaultInjector, FaultSchedule
from repro.distributed.process_group import (
    DEFAULT_COLLECTIVE_TIMEOUT,
    ProcessGroup,
)
from repro.distributed.rendezvous import Rendezvous
from repro.distributed.symmetric import SymmetricProcessGroup
from repro.distributed.threaded import ThreadedProcessGroup
from repro.errors import DistributedError, RankCrashedError, RankFailureError
from repro.hw.comm_model import CommModel
from repro.hw.specs import ClusterTopology, cluster_of
from repro.resilience.abort import CoordinatedAbort

__all__ = [
    "spawn",
    "init_single_process",
    "shutdown",
    "get_rank",
    "get_world_size",
    "get_device",
    "default_group",
    "new_group",
    "is_initialized",
    "barrier",
    "WorldContext",
]

_tls = threading.local()


class Cluster:
    """Shared state of one threaded world."""

    def __init__(self, topology: ClusterTopology, comm_model: CommModel, devices: list[Device]):
        self.topology = topology
        self.comm_model = comm_model
        self.devices = devices
        self._lock = threading.Lock()
        self._rendezvous: dict[tuple, Rendezvous] = {}

    def rendezvous_for(self, ranks: tuple[int, ...], call_index: int) -> Rendezvous:
        key = (ranks, call_index)
        with self._lock:
            rdv = self._rendezvous.get(key)
            if rdv is None:
                rdv = Rendezvous(len(ranks))
                self._rendezvous[key] = rdv
            return rdv


@dataclass
class WorldContext:
    """Thread-local description of the calling rank's world."""

    rank: int
    world_size: int
    device: Device
    topology: ClusterTopology
    comm_model: CommModel
    backend: str
    cluster: Optional[Cluster] = None
    group: Optional[ProcessGroup] = None
    collective_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT
    fault_injector: Optional[FaultInjector] = None
    _group_counters: dict = field(default_factory=dict)

    def next_group_index(self, ranks: tuple[int, ...]) -> int:
        index = self._group_counters.get(ranks, 0)
        self._group_counters[ranks] = index + 1
        return index


def _current(required: bool = True) -> Optional[WorldContext]:
    ctx = getattr(_tls, "ctx", None)
    if ctx is None and required:
        raise DistributedError(
            "no distributed world on this thread; use spawn() or init_single_process()"
        )
    return ctx


def is_initialized() -> bool:
    return _current(required=False) is not None


def get_rank() -> int:
    return _current().rank


def get_world_size() -> int:
    return _current().world_size


def get_device() -> Device:
    return _current().device


def default_group() -> ProcessGroup:
    ctx = _current()
    if ctx.group is None:
        ctx.group = new_group(tuple(range(ctx.world_size)))
    return ctx.group


def barrier() -> None:
    default_group().barrier()


def new_group(ranks: Sequence[int], *, concurrent_groups: int = 1) -> ProcessGroup:
    """Create a subgroup over ``ranks``; collective across its members.

    In the threaded backend every member must call this the same number
    of times with the same ranks, in the same order (like
    ``torch.distributed.new_group``).  ``concurrent_groups`` tells the
    cost model how many sibling groups share the same links (hybrid
    sharding's per-local-rank replicate groups).
    """
    ctx = _current()
    ranks = tuple(sorted(int(r) for r in ranks))
    if ctx.rank not in ranks:
        raise DistributedError(
            f"rank {ctx.rank} must be a member of the group it creates ({ranks})"
        )
    if ctx.backend == "symmetric":
        return SymmetricProcessGroup(
            rank=ctx.rank,
            ranks=ranks,
            device=ctx.device,
            comm_model=ctx.comm_model,
            concurrent_groups=concurrent_groups,
            timeout=ctx.collective_timeout,
        )
    assert ctx.cluster is not None
    call_index = ctx.next_group_index(ranks)
    rdv = ctx.cluster.rendezvous_for(ranks, call_index)
    return ThreadedProcessGroup(
        rendezvous=rdv,
        rank=ctx.rank,
        ranks=ranks,
        device=ctx.device,
        comm_model=ctx.comm_model,
        concurrent_groups=concurrent_groups,
        timeout=ctx.collective_timeout,
    )


def _resolve_injector(
    fault_schedule: Optional[FaultSchedule],
    fault_injector: Optional[FaultInjector],
) -> Optional[FaultInjector]:
    if fault_injector is not None:
        return fault_injector
    if fault_schedule is not None:
        return FaultInjector(fault_schedule)
    return None


def _resolve_abort(coordinated_abort) -> CoordinatedAbort:
    """Normalize the ``coordinated_abort`` argument to a shared latch.

    ``True`` (the default) builds an enabled latch, ``False`` a
    disabled one (the uncoordinated negative control — survivors drain
    pending collectives serially); a pre-built
    :class:`~repro.resilience.CoordinatedAbort` passes through so
    elastic drivers and tests can configure health leases.
    """
    if isinstance(coordinated_abort, CoordinatedAbort):
        return coordinated_abort
    return CoordinatedAbort(enabled=bool(coordinated_abort))


def init_single_process(
    world_size: int,
    *,
    rank: int = 0,
    topology: Optional[ClusterTopology] = None,
    materialize: bool = False,
    capacity: Optional[int] = None,
    comm_model: Optional[CommModel] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    fault_injector: Optional[FaultInjector] = None,
    collective_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT,
    flight_recorder=None,
    coordinated_abort=True,
) -> WorldContext:
    """Set up a symmetric one-rank world for performance simulation."""
    topology = topology or cluster_of(world_size)
    if topology.world_size < world_size:
        raise DistributedError(
            f"topology holds {topology.world_size} GPUs < world_size {world_size}"
        )
    comm_model = comm_model or CommModel(topology)
    device = Device("sim_gpu", index=rank, spec=topology.gpu, capacity=capacity)
    device.materialize_data = materialize
    injector = _resolve_injector(fault_schedule, fault_injector)
    device.fault_injector = injector
    device.abort = _resolve_abort(coordinated_abort)
    if flight_recorder is not None:
        device.flight_recorder = flight_recorder
    if injector is not None:
        # Injected faults surface as instant marks on the device's
        # timeline (visible once a tracer is attached).
        injector.mark_hook = device.emit_mark
    ctx = WorldContext(
        rank=rank,
        world_size=world_size,
        device=device,
        topology=topology,
        comm_model=comm_model,
        backend="symmetric",
        collective_timeout=collective_timeout,
        fault_injector=injector,
    )
    _tls.ctx = ctx
    return ctx


def shutdown() -> None:
    """Tear down the calling thread's world context."""
    _tls.ctx = None


def spawn(
    fn: Callable,
    world_size: int,
    *,
    topology: Optional[ClusterTopology] = None,
    materialize: bool = True,
    capacity: Optional[int] = None,
    comm_model: Optional[CommModel] = None,
    args: tuple = (),
    fault_schedule: Optional[FaultSchedule] = None,
    fault_injector: Optional[FaultInjector] = None,
    collective_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT,
    flight_recorder=None,
    coordinated_abort=True,
    desync_check: bool = False,
) -> list:
    """Run ``fn(rank, *args)`` on ``world_size`` threads; returns results.

    Each thread gets its own simulated device and thread-local world;
    collectives inside ``fn`` move real data between the threads.

    ``fault_schedule`` (or a pre-built ``fault_injector``, which elastic
    drivers reuse across restarts so one-shot faults fire exactly once)
    installs deterministic fault injection on every rank;
    ``collective_timeout`` is the per-collective watchdog deadline.  If
    any rank raises, the first failing rank's error is re-raised,
    chained under :class:`DistributedError` — typed collective errors
    (timeout, crash) propagate as the ``__cause__``, and the raised
    error's ``rank_errors`` attribute maps every failed rank to its
    exception (elastic controllers use it to plan targeted healing).

    ``coordinated_abort`` installs one shared
    :class:`~repro.resilience.CoordinatedAbort` latch across the world
    (pass ``False`` for the uncoordinated negative control, or a
    pre-built latch to configure health leases); ``desync_check``
    enables the pre-launch cross-rank collective-signature check.
    """
    topology = topology or cluster_of(world_size)
    if topology.world_size < world_size:
        raise DistributedError(
            f"topology holds {topology.world_size} GPUs < world_size {world_size}"
        )
    shared_comm_model = comm_model or CommModel(topology)
    injector = _resolve_injector(fault_schedule, fault_injector)
    abort = _resolve_abort(coordinated_abort)
    devices = []
    for rank in range(world_size):
        device = Device("sim_gpu", index=rank, spec=topology.gpu, capacity=capacity)
        device.materialize_data = materialize
        device.fault_injector = injector
        # One abort latch shared by all ranks: the first watchdog to
        # declare a failure poisons every group in the world.
        device.abort = abort
        device.desync_checker = desync_check
        # One recorder shared by all ranks: a single dump shows the
        # whole world's in-flight collectives (and the missing ranks).
        device.flight_recorder = flight_recorder
        devices.append(device)
    cluster = Cluster(topology, shared_comm_model, devices)

    results: list = [None] * world_size
    errors: list = [None] * world_size

    def worker(rank: int) -> None:
        ctx = WorldContext(
            rank=rank,
            world_size=world_size,
            device=devices[rank],
            topology=topology,
            comm_model=shared_comm_model,
            backend="threaded",
            cluster=cluster,
            collective_timeout=collective_timeout,
            fault_injector=injector,
        )
        _tls.ctx = ctx
        try:
            results[rank] = fn(rank, *args)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[rank] = exc
        finally:
            _tls.ctx = None

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"rank{rank}")
        for rank in range(world_size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for rank, error in enumerate(errors):
        if error is not None:
            wrapper = DistributedError(f"rank {rank} failed: {error!r}")
            wrapper.rank_errors = {
                r: e for r, e in enumerate(errors) if e is not None
            }
            wrapper.failed_ranks = _failed_ranks(errors)
            raise wrapper from error
    return results


def _failed_ranks(errors: list) -> tuple[int, ...]:
    """Ranks that actually *died*, per the typed errors.

    Survivors of a crash or abort raise too (RankCrashedError on every
    rank, RankFailureError on every survivor), so the raiser set is not
    the dead set: the dead set is the union of the ranks the typed
    errors *name*.
    """
    failed: set[int] = set()
    for exc in errors:
        if isinstance(exc, RankCrashedError):
            failed.add(exc.rank)
        elif isinstance(exc, RankFailureError):
            failed.update(exc.failed_ranks)
    return tuple(sorted(failed))
