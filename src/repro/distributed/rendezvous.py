"""Barrier-style rendezvous for the threaded process-group backend.

Each collective is one rendezvous round: every member thread deposits
a payload (its data shard and its local ready-time), the last arrival
runs a combiner over all payloads, and everyone leaves with the
combined result.  Rounds are generation-counted so the same object can
be reused for an unbounded sequence of collectives.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.errors import DistributedError

__all__ = ["Rendezvous"]

_DEFAULT_TIMEOUT = 120.0


class Rendezvous:
    """A reusable all-to-all meeting point for ``world_size`` threads."""

    def __init__(self, world_size: int, timeout: float = _DEFAULT_TIMEOUT):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.timeout = timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        self._payloads: list = [None] * world_size
        self._result = None

    def exchange(self, member_rank: int, payload, combiner: Callable[[Sequence], object]):
        """Deposit ``payload``; the last thread runs ``combiner(payloads)``.

        Returns the combiner's result to every member.
        """
        with self._cond:
            generation = self._generation
            self._payloads[member_rank] = payload
            self._arrived += 1
            if self._arrived == self.world_size:
                try:
                    self._result = combiner(self._payloads)
                finally:
                    self._arrived = 0
                    self._payloads = [None] * self.world_size
                    self._generation += 1
                    self._cond.notify_all()
                return self._result
            deadline_result = self._cond.wait_for(
                lambda: self._generation != generation, timeout=self.timeout
            )
            if not deadline_result:
                raise DistributedError(
                    f"rendezvous timed out after {self.timeout}s "
                    f"(member {member_rank}, generation {generation}); "
                    "a peer rank likely failed or diverged"
                )
            return self._result
