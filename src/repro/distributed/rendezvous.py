"""Barrier-style rendezvous for the threaded process-group backend.

Each collective is one rendezvous round: every member thread deposits
a payload (its data shard and its local ready-time), the last arrival
runs a combiner over all payloads, and everyone leaves with the
combined result.  Rounds are generation-counted so the same object can
be reused for an unbounded sequence of collectives.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.errors import DistributedError

__all__ = ["Rendezvous", "RendezvousAbortedError", "RendezvousTimeoutError"]

_DEFAULT_TIMEOUT = 120.0


class RendezvousTimeoutError(DistributedError):
    """A member waited past the deadline for its peers to arrive.

    The threaded backend converts this into a
    :class:`repro.errors.CollectiveTimeoutError` carrying the
    collective kind and group ranks (the NCCL-watchdog analogue).
    """

    def __init__(self, member_rank: int, timeout: float, generation: int):
        self.member_rank = member_rank
        self.timeout = timeout
        self.generation = generation
        super().__init__(
            f"rendezvous timed out after {timeout}s "
            f"(member {member_rank}, generation {generation}); "
            "a peer rank likely failed or diverged"
        )


class RendezvousAbortedError(DistributedError):
    """A blocked member was woken by a coordinated abort.

    Raised instead of waiting out the full rendezvous deadline when the
    world's abort latch is poisoned mid-round: the failed peer will
    never arrive, so the survivor leaves immediately.  The threaded
    backend converts this into a
    :class:`repro.errors.RankFailureError`.
    """

    def __init__(self, member_rank: int, generation: int):
        self.member_rank = member_rank
        self.generation = generation
        super().__init__(
            f"rendezvous aborted (member {member_rank}, "
            f"generation {generation}): a peer rank was declared failed"
        )


class Rendezvous:
    """A reusable all-to-all meeting point for ``world_size`` threads."""

    def __init__(self, world_size: int, timeout: float = _DEFAULT_TIMEOUT):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.timeout = timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        self._payloads: list = [None] * world_size
        self._result = None

    def exchange(
        self,
        member_rank: int,
        payload,
        combiner: Callable[[Sequence], object],
        *,
        timeout: float | None = None,
        abort=None,
    ):
        """Deposit ``payload``; the last thread runs ``combiner(payloads)``.

        Returns the combiner's result to every member.  ``timeout``
        (wall-clock seconds) overrides the rendezvous default; on
        expiry a :class:`RendezvousTimeoutError` is raised and the
        round is left un-completed (the world must be torn down — a
        partial rendezvous cannot be rejoined).

        ``abort`` (a ``repro.resilience.CoordinatedAbort``) makes the
        wait abort-aware: a mid-round declaration notifies this
        condition variable and the survivor leaves *immediately* with
        :class:`RendezvousAbortedError` instead of burning the full
        deadline — the wall-clock half of coordinated abort.  A round
        that actually completed wins over a concurrent abort.
        """
        deadline = self.timeout if timeout is None else timeout
        if abort is not None:
            abort.register_condition(self._cond)
        with self._cond:
            generation = self._generation
            self._payloads[member_rank] = payload
            self._arrived += 1
            if self._arrived == self.world_size:
                try:
                    self._result = combiner(self._payloads)
                finally:
                    self._arrived = 0
                    self._payloads = [None] * self.world_size
                    self._generation += 1
                    self._cond.notify_all()
                return self._result

            def done() -> bool:
                if self._generation != generation:
                    return True
                return abort is not None and abort.enabled and abort.poisoned

            completed = self._cond.wait_for(done, timeout=deadline)
            if self._generation != generation:
                return self._result
            if completed:
                raise RendezvousAbortedError(member_rank, generation)
            raise RendezvousTimeoutError(member_rank, deadline, generation)
