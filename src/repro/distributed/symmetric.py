"""Symmetric single-rank backend for performance simulation.

SPMD training is symmetric: every rank runs the same program on the
same-sized shards, so for *timing and memory* purposes one rank's
timeline plus group-aware collective costs is enough.  This backend
assumes all peers reach each collective at the same simulated instant
as the local rank, and performs no data movement (it is used with
abstract tensors for the paper-scale sweeps of Sections 5.2–5.4).

For numerics-preserving runs use :class:`ThreadedProcessGroup`.
"""

from __future__ import annotations

from typing import Sequence

from repro.distributed.process_group import ProcessGroup, ReduceOp, Work
from repro.errors import DistributedError
from repro.hw.comm_model import CollectiveKind
from repro.tensor import Tensor

__all__ = ["SymmetricProcessGroup"]


class SymmetricProcessGroup(ProcessGroup):
    """Single-process stand-in for a full group of lockstep ranks."""

    def all_gather_into_tensor(self, output, input, *, stream=None) -> Work:
        self._check_all_gather_shapes(output, input)
        if output.is_materialized and self.world_size > 1:
            raise DistributedError(
                "SymmetricProcessGroup cannot produce real gathered data; "
                "use the threaded backend for materialized tensors"
            )
        nbytes = output.numel * input.dtype.itemsize
        work = self._launch_collective(CollectiveKind.ALL_GATHER_BASE, nbytes, stream)
        self._note_data_use(stream, reads=(input,), writes=(output,))
        return work

    def reduce_scatter_tensor(self, output, input, op=ReduceOp.SUM, *, stream=None) -> Work:
        self._check_reduce_scatter_shapes(output, input)
        nbytes = input.numel * input.dtype.itemsize
        work = self._launch_collective(CollectiveKind.REDUCE_SCATTER, nbytes, stream)
        self._note_data_use(stream, reads=(input,), writes=(output,))
        return work

    def all_gather_into_tensor_coalesced(self, pairs, *, stream=None) -> Work:
        self._check_coalesced_pairs(pairs, kind="all_gather_into_tensor_coalesced")
        for output, _ in pairs:
            if output.is_materialized and self.world_size > 1:
                raise DistributedError(
                    "SymmetricProcessGroup cannot produce real gathered data; "
                    "use the threaded backend for materialized tensors"
                )
        nbytes = sum(o.numel * i.dtype.itemsize for o, i in pairs)
        work = self._launch_collective(CollectiveKind.ALL_GATHER_BASE, nbytes, stream)
        self._note_data_use(
            stream,
            reads=tuple(i for _, i in pairs),
            writes=tuple(o for o, _ in pairs),
        )
        return work

    def reduce_scatter_tensor_coalesced(self, pairs, op=ReduceOp.SUM, *, stream=None) -> Work:
        self._check_coalesced_pairs(pairs, kind="reduce_scatter_tensor_coalesced")
        nbytes = sum(i.numel * i.dtype.itemsize for _, i in pairs)
        work = self._launch_collective(CollectiveKind.REDUCE_SCATTER, nbytes, stream)
        self._note_data_use(
            stream,
            reads=tuple(i for _, i in pairs),
            writes=tuple(o for o, _ in pairs),
        )
        return work

    def reduce_scatter(
        self, output, input, input_sizes, op=ReduceOp.SUM, *, stream=None
    ) -> Work:
        self._check_reduce_scatter_uneven_shapes(output, input, input_sizes)
        sizes = list(input_sizes)
        even = len(set(sizes)) == 1
        kind = (
            CollectiveKind.REDUCE_SCATTER
            if even
            else CollectiveKind.REDUCE_SCATTER_UNEVEN
        )
        nbytes = input.numel * input.dtype.itemsize
        shard_nbytes = None if even else [s * input.dtype.itemsize for s in sizes]
        work = self._launch_collective(kind, nbytes, stream, shard_nbytes=shard_nbytes)
        self._note_data_use(stream, reads=(input,), writes=(output,))
        return work

    def all_reduce(self, tensor, op=ReduceOp.SUM, *, stream=None) -> Work:
        nbytes = tensor.numel * tensor.dtype.itemsize
        work = self._launch_collective(CollectiveKind.ALL_REDUCE, nbytes, stream)
        self._note_data_use(stream, reads=(tensor,), writes=(tensor,))
        return work

    def broadcast(self, tensor, src: int, *, stream=None) -> Work:
        nbytes = tensor.numel * tensor.dtype.itemsize
        work = self._launch_collective(CollectiveKind.BROADCAST, nbytes, stream)
        self._note_data_use(stream, reads=(tensor,), writes=(tensor,))
        return work

    def all_gather(self, outputs: Sequence[Tensor], input: Tensor, *, stream=None) -> Work:
        sizes = [o.numel for o in outputs]
        even = len(set(sizes)) == 1 and sizes[0] == input.numel
        kind = CollectiveKind.ALL_GATHER_LIST if even else CollectiveKind.ALL_GATHER_UNEVEN
        nbytes = sum(sizes) * input.dtype.itemsize
        shard_nbytes = [s * input.dtype.itemsize for s in sizes]
        work = self._launch_collective(kind, nbytes, stream, shard_nbytes=shard_nbytes)
        self._note_data_use(stream, reads=(input,), writes=tuple(outputs))
        return work

    def barrier(self) -> None:
        self.device.consume_cpu(self.comm_model.launch_overhead)

    def all_reduce_scalar(self, value: float, op: str = ReduceOp.SUM) -> float:
        if op == ReduceOp.SUM:
            return float(value) * self.world_size
        if op == ReduceOp.AVG or op == ReduceOp.MAX:
            return float(value)
        raise DistributedError(f"unknown reduce op {op}")
