"""Distributed runtime: process groups, collectives, SPMD launchers."""

from repro.distributed.api import (
    WorldContext,
    barrier,
    default_group,
    get_device,
    get_rank,
    get_world_size,
    init_single_process,
    is_initialized,
    new_group,
    shutdown,
    spawn,
)
from repro.distributed.fault import (
    FaultDecision,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    StorageDecision,
)
from repro.distributed.mesh import (
    DeviceMesh,
    Placement,
    Replicate,
    Shard,
    init_device_mesh,
)
from repro.distributed.process_group import (
    DEFAULT_COLLECTIVE_TIMEOUT,
    ProcessGroup,
    ReduceOp,
    Work,
    retry_backoff,
)
from repro.distributed.rendezvous import (
    Rendezvous,
    RendezvousAbortedError,
    RendezvousTimeoutError,
)
from repro.distributed.symmetric import SymmetricProcessGroup
from repro.distributed.threaded import ThreadedProcessGroup
from repro.resilience import CoordinatedAbort

__all__ = [
    "DeviceMesh",
    "Placement",
    "Shard",
    "Replicate",
    "init_device_mesh",
    "ProcessGroup",
    "ThreadedProcessGroup",
    "SymmetricProcessGroup",
    "Work",
    "ReduceOp",
    "WorldContext",
    "spawn",
    "init_single_process",
    "shutdown",
    "get_rank",
    "get_world_size",
    "get_device",
    "default_group",
    "new_group",
    "is_initialized",
    "barrier",
    "DEFAULT_COLLECTIVE_TIMEOUT",
    "FaultKind",
    "FaultEvent",
    "FaultDecision",
    "StorageDecision",
    "FaultSchedule",
    "FaultInjector",
    "CoordinatedAbort",
    "Rendezvous",
    "RendezvousAbortedError",
    "RendezvousTimeoutError",
    "retry_backoff",
]
