"""DeviceMesh and placements for per-parameter sharding.

The flat-param backend reasons about one opaque 1-D buffer per unit;
the per-parameter backend (``fully_shard(..., backend="per_param")``)
instead describes *where each parameter lives* with two primitives
borrowed from DTensor:

- :class:`Shard` — the tensor is split on one dimension (dim 0 here)
  across the ranks of a mesh dimension;
- :class:`Replicate` — every rank of the mesh dimension holds a full
  copy.

A :class:`DeviceMesh` is a named view over the process groups an FSDP
sharding plan already builds: a 1-D ``("shard",)`` mesh for FULL_SHARD
/ SHARD_GRAD_OP, a 2-D ``("replicate", "shard")`` mesh for the hybrid
strategies.  The mesh carries no collectives of its own — it resolves
placements to groups and owns the dim-0 chunking arithmetic.

Chunking is *exact*: rank ``r`` of a ``world``-rank shard dimension
holds rows ``[r * ceil(n / world), min((r + 1) * ceil(n / world), n))``.
Trailing ranks may hold short (or empty) chunks; the handles pad only
their *transient* collective staging buffers to even segments, so
unlike the flat-param flatten-concat-chunk layout no padding is ever
stored — neither in the persistent shards nor in the unsharded
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.cuda.device import Device
from repro.distributed.process_group import ProcessGroup
from repro.errors import ShardingError

__all__ = [
    "Placement",
    "Shard",
    "Replicate",
    "DeviceMesh",
    "init_device_mesh",
    "chunk_bounds",
    "local_chunk",
    "chunk_numels",
    "padded_chunk_rows",
]


# ----------------------------------------------------------------------
# Dim-0 chunking arithmetic (shared by placements, handles and tests)
# ----------------------------------------------------------------------
def chunk_bounds(size: int, world: int) -> list[tuple[int, int]]:
    """Per-rank ``[start, end)`` bounds of an even-chunk dim split.

    Chunks are ``ceil(size / world)`` long; the tail rank(s) take what
    is left, possibly nothing (``size < world`` leaves empty chunks).
    """
    if size < 0:
        raise ShardingError(f"cannot chunk a negative size {size}")
    if world <= 0:
        raise ShardingError(f"chunking requires a positive world size, got {world}")
    chunk = -(-size // world) if size else 0
    bounds = []
    for rank in range(world):
        start = min(rank * chunk, size)
        bounds.append((start, min(start + chunk, size)))
    return bounds


def local_chunk(size: int, world: int, rank: int) -> tuple[int, int]:
    """``rank``'s ``[start, end)`` bounds of the dim split."""
    if not 0 <= rank < world:
        raise ShardingError(f"rank {rank} outside world of size {world}")
    return chunk_bounds(size, world)[rank]


def chunk_numels(shape: Sequence[int], world: int) -> list[int]:
    """Per-rank element counts when ``shape`` is sharded on dim 0.

    A 0-d tensor is treated as one row (rank 0 holds it entirely).
    """
    rows = shape[0] if shape else 1
    row_numel = 1
    for dim in shape[1:]:
        row_numel *= dim
    return [(end - start) * row_numel for start, end in chunk_bounds(rows, world)]


def padded_chunk_rows(size: int, world: int) -> int:
    """Rows of padding an *even-size* chunking would append.

    The per-param backend never allocates this padding (its collectives
    are uneven-aware); the number is kept for the memory accounting the
    bench reports against the flat-param layout.
    """
    chunk = -(-size // world) if size else 0
    return chunk * world - size


# ----------------------------------------------------------------------
# Placements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Placement:
    """How a tensor relates to one mesh dimension."""

    @property
    def is_shard(self) -> bool:
        return isinstance(self, Shard)

    @property
    def is_replicate(self) -> bool:
        return isinstance(self, Replicate)


@dataclass(frozen=True)
class Shard(Placement):
    """Split on ``dim`` across the mesh dimension's ranks."""

    dim: int = 0

    def __post_init__(self):
        if self.dim != 0:
            raise ShardingError(
                f"per-parameter sharding only supports dim-0 placement, got Shard({self.dim})"
            )

    def bounds(self, shape: Sequence[int], world: int) -> list[tuple[int, int]]:
        """Per-rank row bounds for a tensor of ``shape``."""
        rows = shape[0] if shape else 1
        return chunk_bounds(rows, world)

    def local_bounds(self, shape: Sequence[int], world: int, rank: int) -> tuple[int, int]:
        return self.bounds(shape, world)[rank]

    def shard_shape(self, shape: Sequence[int], world: int, rank: int) -> tuple[int, ...]:
        """The local shard's logical shape on ``rank``."""
        start, end = self.local_bounds(shape, world, rank)
        if not shape:
            return (end - start,)
        return (end - start, *tuple(shape[1:]))


@dataclass(frozen=True)
class Replicate(Placement):
    """Every rank of the mesh dimension holds the full tensor."""

    def shard_shape(self, shape: Sequence[int], world: int, rank: int) -> tuple[int, ...]:
        return tuple(shape)


# ----------------------------------------------------------------------
# DeviceMesh
# ----------------------------------------------------------------------
class DeviceMesh:
    """A named, N-D arrangement of ranks backed by process groups.

    ``dim_names[i]`` labels ``groups[i]``; the *last* dimension is the
    one parameters shard over (matching the 2-D hybrid layout where the
    outer dimension replicates across hosts and the inner one shards
    within a host).
    """

    def __init__(
        self,
        device: Device,
        groups: Sequence[ProcessGroup],
        dim_names: Sequence[str] = (),
    ):
        if not groups:
            raise ShardingError("DeviceMesh needs at least one process group")
        dim_names = tuple(dim_names) if dim_names else tuple(
            f"dim{i}" for i in range(len(groups))
        )
        if len(dim_names) != len(groups):
            raise ShardingError(
                f"DeviceMesh got {len(groups)} groups but {len(dim_names)} dim names"
            )
        if len(set(dim_names)) != len(dim_names):
            raise ShardingError(f"DeviceMesh dim names must be unique: {dim_names}")
        self.device = device
        self._groups = tuple(groups)
        self.dim_names = dim_names

    # -- shape ----------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self._groups)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(g.world_size for g in self._groups)

    def size(self, dim: Optional[Union[int, str]] = None) -> int:
        if dim is None:
            total = 1
            for g in self._groups:
                total *= g.world_size
            return total
        return self.get_group(dim).world_size

    # -- group resolution ----------------------------------------------
    def get_group(self, dim: Union[int, str]) -> ProcessGroup:
        if isinstance(dim, str):
            try:
                dim = self.dim_names.index(dim)
            except ValueError:
                raise ShardingError(
                    f"mesh has no dimension {dim!r} (have {self.dim_names})"
                ) from None
        try:
            return self._groups[dim]
        except IndexError:
            raise ShardingError(
                f"mesh dimension {dim} out of range for shape {self.shape}"
            ) from None

    @property
    def shard_group(self) -> ProcessGroup:
        """The group parameters shard over (the innermost dimension)."""
        return self._groups[-1]

    @property
    def replicate_group(self) -> Optional[ProcessGroup]:
        """The group gradients are additionally reduced over, if any."""
        if self.ndim < 2:
            return None
        return self._groups[-2]

    @property
    def shard_rank(self) -> int:
        return self.shard_group.rank

    # -- construction ---------------------------------------------------
    @classmethod
    def from_plan(cls, plan, device: Device) -> "DeviceMesh":
        """Wrap an FSDP :class:`~repro.fsdp.sharding.ShardingPlan`.

        Hybrid plans become a 2-D ``("replicate", "shard")`` mesh; flat
        plans a 1-D ``("shard",)`` mesh.  NO_SHARD's reduce group also
        maps to the replicate dimension, so DDP-style gradient
        all-reduce falls out of the same mesh shape.
        """
        if plan.replicate_group is not None:
            return cls(
                device,
                (plan.replicate_group, plan.shard_group),
                ("replicate", "shard"),
            )
        return cls(device, (plan.shard_group,), ("shard",))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dims = ", ".join(
            f"{name}={g.world_size}" for name, g in zip(self.dim_names, self._groups)
        )
        return f"DeviceMesh({dims})"


def init_device_mesh(
    device: Optional[Device] = None,
    *,
    sharding_strategy=None,
    sharding_factor: Optional[int] = None,
    process_group: Optional[ProcessGroup] = None,
) -> DeviceMesh:
    """Build the mesh for an FSDP sharding strategy (default FULL_SHARD).

    This is the ``fully_shard(backend="per_param")`` entry point for
    callers that want to pre-build and share one mesh across units
    rather than letting each ``fully_shard`` call derive its own.
    """
    from repro import distributed as dist
    from repro.fsdp.sharding import ShardingStrategy, make_process_groups

    if sharding_strategy is None:
        sharding_strategy = ShardingStrategy.FULL_SHARD
    plan = make_process_groups(
        sharding_strategy, process_group, sharding_factor=sharding_factor
    )
    return DeviceMesh.from_plan(plan, device or dist.get_device())
