"""Deterministic, seedable fault injection for the simulated cluster.

The paper's production experience (Sections 3.4 and 5.4) is shaped by
degraded clusters: straggler ranks, slow or flapping links, allocator
pressure that triggers cudaMalloc-retry storms, and outright rank
crashes.  This module models that fault taxonomy as data:

- a :class:`FaultSchedule` is an immutable list of :class:`FaultEvent`
  descriptions, either hand-written or generated reproducibly from a
  seed via :meth:`FaultSchedule.random`;
- a :class:`FaultInjector` interprets the schedule at runtime.  Both
  process-group backends consult it on **every collective** (via
  ``ProcessGroup``) and training loops consult it at **iteration
  boundaries** (crashes, memory pressure).

Determinism guarantees
----------------------

All runtime decisions are pure functions of per-rank counters (the
rank's iteration number and per-rank collective sequence number) plus
the schedule; no wall clock and no ambient RNG is consulted after
construction.  Two runs with the same schedule therefore inject the
same faults at the same logical points.  Timing faults (stragglers,
delays, degraded links, transient retried failures) only move points on
the *simulated* clock — they never touch collective payloads, so
training losses are bitwise identical to a fault-free run (property
tested in ``tests/test_fault_properties.py``).
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultDecision",
    "StorageDecision",
    "FaultSchedule",
    "FaultInjector",
]


class FaultKind(enum.Enum):
    """The injectable fault taxonomy."""

    #: A rank is uniformly slow for a window of iterations: every
    #: collective it joins is delayed by ``delay_s`` (its peers observe
    #: a late arrival, exactly like a de-scheduled or thermally
    #: throttled GPU).
    STRAGGLER = "straggler"
    #: One specific collective (by per-rank sequence number and/or
    #: kind) is delayed by ``delay_s`` and/or stretched by
    #: ``duration_factor`` (a slow link).
    DELAY = "delay"
    #: A collective fails transiently ``failures`` times before
    #: succeeding; the process group retries with backoff.
    TRANSIENT = "transient"
    #: A collective never completes on the matched rank; the watchdog
    #: converts the hang into a :class:`CollectiveTimeoutError` on every
    #: member rank.
    HANG = "hang"
    #: The matched rank issues a collective whose signature (kind,
    #: bytes, dtype, seq) disagrees with its peers — an SPMD divergence.
    #: The pre-launch desync check converts it into a
    #: :class:`CollectiveDesyncError` naming the divergent rank(s);
    #: this kind is the detector's negative control.
    DESYNC = "desync"
    #: The matched rank dies at the start of ``iteration`` (raises
    #: :class:`RankCrashedError`); elastic loops recover from the
    #: latest sharded checkpoint.
    CRASH = "crash"
    #: Foreign allocations occupy ``pressure_bytes`` of device memory
    #: for a window of iterations, provoking cudaMalloc retries.
    OOM_PRESSURE = "oom_pressure"
    #: A checkpoint shard write is truncated mid-flight (writer died or
    #: the filesystem lost the tail): the stored bytes no longer match
    #: the checksum the manifest committed.
    TORN_WRITE = "torn_write"
    #: A stored checkpoint shard has one bit flipped (silent media or
    #: transfer corruption); only a checksum verify can catch it.
    BIT_CORRUPTION = "bit_corruption"
    #: A checkpoint shard file disappears entirely after being written
    #: (lost object, evicted cache tier).
    LOST_SHARD = "lost_shard"


#: Fault kinds that may change *when* things happen but never *what* is
#: computed.  Schedules restricted to these kinds are loss-preserving.
TIMING_ONLY_KINDS = frozenset(
    {FaultKind.STRAGGLER, FaultKind.DELAY, FaultKind.TRANSIENT}
)

#: Fault kinds that target checkpoint storage rather than collectives.
#: They never perturb training numerics directly — they only surface at
#: restore time, where the integrity-checked store falls back to the
#: last verified-good checkpoint (recovery-semantics preserving).
STORAGE_KINDS = frozenset(
    {FaultKind.TORN_WRITE, FaultKind.BIT_CORRUPTION, FaultKind.LOST_SHARD}
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``rank is None`` matches every rank.  Iteration windows are
    half-open ``[start_iteration, end_iteration)``; ``end_iteration``
    of ``None`` means "until the end of training".  Collective-scoped
    faults (DELAY / TRANSIENT / HANG) trigger on the per-rank
    collective sequence number ``collective_index`` (``None`` = any)
    and optionally only on collectives of ``collective_kind``.
    """

    kind: FaultKind
    rank: Optional[int] = None
    iteration: Optional[int] = None
    start_iteration: int = 0
    end_iteration: Optional[int] = None
    collective_index: Optional[int] = None
    collective_kind: Optional[str] = None
    delay_s: float = 0.0
    duration_factor: float = 1.0
    failures: int = 1
    pressure_bytes: int = 0

    def matches_rank(self, rank: int) -> bool:
        return self.rank is None or self.rank == rank

    def in_window(self, iteration: int) -> bool:
        if self.iteration is not None:
            return iteration == self.iteration
        if iteration < self.start_iteration:
            return False
        return self.end_iteration is None or iteration < self.end_iteration

    def matches_collective(self, *, rank: int, iteration: int, seq: int, kind: str) -> bool:
        if not self.matches_rank(rank) or not self.in_window(iteration):
            return False
        if self.collective_index is not None and self.collective_index != seq:
            return False
        return self.collective_kind is None or self.collective_kind == kind


@dataclass
class FaultDecision:
    """The injector's verdict for one collective attempt on one rank."""

    delay_s: float = 0.0
    duration_factor: float = 1.0
    fail: bool = False
    hang: bool = False
    crash: bool = False
    desync: bool = False

    @property
    def benign(self) -> bool:
        return not (self.fail or self.hang or self.crash or self.desync) and (
            self.delay_s == 0.0 and self.duration_factor == 1.0
        )


@dataclass
class StorageDecision:
    """The injector's verdict for one checkpoint-shard write.

    Applied by the checkpoint storage layer (`repro.checkpoint`):
    ``torn`` truncates the stored bytes, ``corrupt_bit`` flips the
    addressed bit, ``lost`` drops the object entirely.  All three leave
    the *declared* checksum (computed from the intended bytes) intact,
    so the damage is only discoverable by an integrity verify.
    """

    torn: bool = False
    corrupt_bit: Optional[int] = None
    lost: bool = False

    @property
    def benign(self) -> bool:
        return not (self.torn or self.lost) and self.corrupt_bit is None


class FaultSchedule:
    """An immutable, seed-reproducible list of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = (), *, seed: int = 0):
        self.events: tuple[FaultEvent, ...] = tuple(events)
        self.seed = seed

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(e.kind.value for e in self.events)
        return f"FaultSchedule(seed={self.seed}, events=[{kinds}])"

    def timing_only(self) -> bool:
        """True if every event provably preserves training numerics."""
        return all(e.kind in TIMING_ONLY_KINDS for e in self.events)

    def crash_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind is FaultKind.CRASH]

    def storage_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind in STORAGE_KINDS]

    def with_events(self, *extra: FaultEvent) -> "FaultSchedule":
        return FaultSchedule(self.events + tuple(extra), seed=self.seed)

    # ------------------------------------------------------------------
    # Seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        *,
        seed: int,
        world_size: int,
        iterations: int,
        stragglers: int = 1,
        delays: int = 2,
        transients: int = 1,
        hangs: int = 0,
        desyncs: int = 0,
        crashes: int = 0,
        pressure_events: int = 0,
        torn_writes: int = 0,
        corruptions: int = 0,
        lost_shards: int = 0,
        max_delay_s: float = 5e-3,
        max_duration_factor: float = 4.0,
        max_failures: int = 3,
        pressure_bytes: int = 1 << 30,
    ) -> "FaultSchedule":
        """Generate a reproducible degraded-cluster schedule.

        All randomness is drawn from ``random.Random(seed)`` at
        construction; the same arguments always yield the same
        schedule.
        """
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for _ in range(stragglers):
            start = rng.randrange(max(iterations, 1))
            events.append(
                FaultEvent(
                    kind=FaultKind.STRAGGLER,
                    rank=rng.randrange(world_size),
                    start_iteration=start,
                    end_iteration=min(start + rng.randint(1, 3), iterations),
                    delay_s=rng.uniform(1e-5, max_delay_s),
                )
            )
        for _ in range(delays):
            events.append(
                FaultEvent(
                    kind=FaultKind.DELAY,
                    rank=rng.randrange(world_size),
                    collective_index=rng.randrange(64),
                    delay_s=rng.uniform(1e-5, max_delay_s),
                    duration_factor=rng.uniform(1.0, max_duration_factor),
                )
            )
        for _ in range(transients):
            events.append(
                FaultEvent(
                    kind=FaultKind.TRANSIENT,
                    rank=rng.randrange(world_size),
                    collective_index=rng.randrange(64),
                    failures=rng.randint(1, max_failures),
                )
            )
        for _ in range(hangs):
            events.append(
                FaultEvent(
                    kind=FaultKind.HANG,
                    rank=rng.randrange(world_size),
                    collective_index=rng.randrange(64),
                )
            )
        for _ in range(desyncs):
            events.append(
                FaultEvent(
                    kind=FaultKind.DESYNC,
                    rank=rng.randrange(world_size),
                    collective_index=rng.randrange(64),
                )
            )
        for _ in range(crashes):
            events.append(
                FaultEvent(
                    kind=FaultKind.CRASH,
                    rank=rng.randrange(world_size),
                    iteration=rng.randrange(max(iterations, 1)),
                )
            )
        for _ in range(pressure_events):
            start = rng.randrange(max(iterations, 1))
            events.append(
                FaultEvent(
                    kind=FaultKind.OOM_PRESSURE,
                    rank=rng.randrange(world_size),
                    start_iteration=start,
                    end_iteration=min(start + rng.randint(1, 2), iterations),
                    pressure_bytes=pressure_bytes,
                )
            )
        for kind, count in (
            (FaultKind.TORN_WRITE, torn_writes),
            (FaultKind.BIT_CORRUPTION, corruptions),
            (FaultKind.LOST_SHARD, lost_shards),
        ):
            for _ in range(count):
                # Storage faults target one rank's shard of one
                # checkpoint iteration (iteration 0 is the initial
                # checkpoint, so target 1..iterations).
                events.append(
                    FaultEvent(
                        kind=kind,
                        rank=rng.randrange(world_size),
                        iteration=rng.randint(1, max(iterations, 1)),
                    )
                )
        return cls(events, seed=seed)

    @classmethod
    def serving_campaign(
        cls,
        *,
        seed: int,
        replicas: int,
        batches: int,
        crashes: int = 1,
        hangs: int = 1,
        delays: int = 2,
        transients: int = 1,
        storage_faults: int = 1,
        max_delay_s: float = 5e-3,
        max_duration_factor: float = 3.0,
        max_failures: int = 2,
    ) -> "FaultSchedule":
        """Degraded-fleet schedule for a :class:`repro.serve` run.

        The serving fleet maps its counters onto the injector's rank/
        iteration vocabulary: the replica id is the rank and a
        replica's batch index is the iteration (equivalently its
        collective sequence number — one representative collective per
        batch).  Collective-scoped faults therefore target the initial
        replica ids (``0..replicas-1``) within the first ``batches``
        batches; storage faults match ``rank=None`` because they hit
        *provisioning* (replacement replicas carry fresh, unpredictable
        ids) at one of the first few provision sequence numbers.
        """
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for _ in range(crashes):
            events.append(
                FaultEvent(
                    kind=FaultKind.CRASH,
                    rank=rng.randrange(replicas),
                    iteration=rng.randrange(1, max(batches, 2)),
                )
            )
        for _ in range(hangs):
            events.append(
                FaultEvent(
                    kind=FaultKind.HANG,
                    rank=rng.randrange(replicas),
                    collective_index=rng.randrange(max(batches, 1)),
                )
            )
        for _ in range(delays):
            events.append(
                FaultEvent(
                    kind=FaultKind.DELAY,
                    rank=rng.randrange(replicas),
                    collective_index=rng.randrange(max(batches, 1)),
                    delay_s=rng.uniform(1e-4, max_delay_s),
                    duration_factor=rng.uniform(1.0, max_duration_factor),
                )
            )
        for _ in range(transients):
            events.append(
                FaultEvent(
                    kind=FaultKind.TRANSIENT,
                    rank=rng.randrange(replicas),
                    collective_index=rng.randrange(max(batches, 1)),
                    failures=rng.randint(1, max_failures),
                )
            )
        storage_kinds = (
            FaultKind.TORN_WRITE,
            FaultKind.BIT_CORRUPTION,
            FaultKind.LOST_SHARD,
        )
        for _ in range(storage_faults):
            events.append(
                FaultEvent(
                    kind=storage_kinds[rng.randrange(len(storage_kinds))],
                    rank=None,
                    iteration=rng.randint(1, 4),
                )
            )
        return cls(events, seed=seed)


@dataclass
class InjectedFault:
    """Log record of one fault actually fired at runtime."""

    kind: FaultKind
    rank: int
    iteration: int
    collective_index: Optional[int] = None
    detail: str = ""


class FaultInjector:
    """Interprets a :class:`FaultSchedule` against runtime counters.

    One injector is shared by every rank of a world (its per-rank state
    lives in rank-keyed dictionaries), and survives elastic restarts so
    one-shot events (crashes, transient-failure budgets) fire exactly
    once per schedule entry.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self._lock = threading.Lock()
        self._iteration: dict[int, int] = {}
        self._seq: dict[int, int] = {}
        # Remaining transient-failure budget per (event index, rank).
        self._transient_left: dict[tuple[int, int], int] = {}
        # One-shot events already fired, per (event index, rank).
        self._fired: set[tuple[int, int]] = set()
        # World incarnation counter (bumped by elastic respawns) and the
        # incarnation in which each crash event first fired: a crash is
        # observed by every rank of *one* incarnation, never by ranks
        # that join later (e.g. an elastic grow replaying the iteration).
        self._generation = 0
        self._crash_generation: dict[int, int] = {}
        self.injected: list[InjectedFault] = []
        #: Optional ``callable(label)`` notified when a fault fires
        #: (wired to the timeline tracer's mark channel).
        self.mark_hook: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def iteration_of(self, rank: int) -> int:
        return self._iteration.get(rank, 0)

    def collective_seq(self, rank: int) -> int:
        return self._seq.get(rank, 0)

    def advance_generation(self) -> None:
        """Mark a world respawn: crash events consumed by the previous
        incarnation stay consumed for ranks that join afterwards."""
        with self._lock:
            self._generation += 1

    def _mark(self, label: str) -> None:
        if self.mark_hook is not None:
            self.mark_hook(label)

    def _log(self, fault: InjectedFault) -> None:
        with self._lock:
            self.injected.append(fault)
        self._mark(f"fault:{fault.kind.value}@r{fault.rank}")

    # ------------------------------------------------------------------
    # Iteration-boundary faults (crashes, memory pressure)
    # ------------------------------------------------------------------
    def begin_replica_batch(self, rank: int, iteration: int) -> bool:
        """Independent-worlds variant of :meth:`begin_iteration`.

        Serving fleets (``repro.serve``) map the replica id to ``rank``
        and the replica's batch index to ``iteration``.  Unlike a
        training world — where any worker death tears down every rank —
        replicas are *separate* sharded worlds, so a CRASH event kills
        only the matched rank.  Returns True when this rank must die
        now (one-shot per event and rank, like all one-shot faults).
        """
        self._iteration[rank] = iteration
        fired: Optional[InjectedFault] = None
        with self._lock:
            for index, event in enumerate(self.schedule.events):
                if event.kind is not FaultKind.CRASH:
                    continue
                if not event.matches_rank(rank) or not event.in_window(iteration):
                    continue
                key = (index, rank)
                if key in self._fired:
                    continue
                self._fired.add(key)
                fired = InjectedFault(
                    FaultKind.CRASH, rank, iteration, detail="replica crash"
                )
                break
        if fired is None:
            return False
        self._log(fired)
        return True

    def begin_iteration(self, rank: int, iteration: int) -> None:
        """Advance the rank's iteration counter and fire crash faults.

        Crashes are surfaced at iteration boundaries on **every** rank
        (naming the crashed rank): in elastic deployments the agent
        tears down the whole world when any worker dies, so peers
        observe the failure as a synchronized abort rather than an
        unbounded hang.  (The unsynchronized-hang path is modelled
        separately by HANG faults plus the watchdog.)
        """
        from repro.errors import RankCrashedError

        self._iteration[rank] = iteration
        for index, event in enumerate(self.schedule.events):
            if event.kind is not FaultKind.CRASH or not event.in_window(iteration):
                continue
            crashed = event.rank if event.rank is not None else rank
            observer_key = (index, rank)
            with self._lock:
                if observer_key in self._fired:
                    continue
                fired_in = self._crash_generation.get(index)
                if fired_in is not None and fired_in != self._generation:
                    # Consumed by an earlier incarnation of the world —
                    # a rank that joined later (elastic grow) replaying
                    # this iteration must not re-fire it.
                    continue
                self._fired.add(observer_key)
                first_observer = fired_in is None
                self._crash_generation[index] = self._generation
            if first_observer:
                self._log(
                    InjectedFault(
                        FaultKind.CRASH, crashed, iteration, detail="rank crash"
                    )
                )
            raise RankCrashedError(rank=crashed, iteration=iteration)

    def on_storage_write(
        self, *, rank: int, iteration: int, path: str = ""
    ) -> StorageDecision:
        """Decide the fate of one checkpoint-shard write.

        ``iteration`` is the checkpoint's iteration number (passed
        explicitly by the storage layer — it is decoupled from the
        runtime iteration counters the collective faults consult).
        Storage events are one-shot per (event, rank): a re-save of the
        same iteration after recovery lands cleanly, which is what lets
        training repair a quarantined checkpoint.
        """
        decision = StorageDecision()
        for index, event in enumerate(self.schedule.events):
            if event.kind not in STORAGE_KINDS:
                continue
            if not event.matches_rank(rank) or not event.in_window(iteration):
                continue
            key = (index, rank)
            with self._lock:
                if key in self._fired:
                    continue
                self._fired.add(key)
            if event.kind is FaultKind.TORN_WRITE:
                decision.torn = True
            elif event.kind is FaultKind.BIT_CORRUPTION:
                # Deterministic bit address: a pure function of the
                # schedule seed and the match, reduced modulo the blob
                # size by the storage layer.
                decision.corrupt_bit = (
                    self.schedule.seed * 1000003 + index * 8191 + rank * 131 + 7
                )
            elif event.kind is FaultKind.LOST_SHARD:
                decision.lost = True
            self._log(
                InjectedFault(
                    event.kind,
                    rank,
                    iteration,
                    detail=f"storage: {path}" if path else "storage",
                )
            )
        return decision

    def pressure_bytes(self, rank: int, iteration: int) -> int:
        """Total injected allocator pressure active for this iteration."""
        total = 0
        for event in self.schedule.events:
            if (
                event.kind is FaultKind.OOM_PRESSURE
                and event.matches_rank(rank)
                and event.in_window(iteration)
            ):
                total += event.pressure_bytes
        return total

    # ------------------------------------------------------------------
    # Collective-level faults
    # ------------------------------------------------------------------
    def on_collective(
        self,
        *,
        rank: int,
        kind: str,
        ranks: Sequence[int] = (),
        attempt: int = 0,
    ) -> FaultDecision:
        """Decide the fate of one collective attempt on ``rank``.

        The per-rank sequence number advances once per *logical*
        collective (attempt 0), so retries of a failed attempt re-match
        the same scheduled events.
        """
        if attempt == 0:
            seq = self._seq.get(rank, 0)
            self._seq[rank] = seq + 1
        else:
            seq = self._seq.get(rank, 1) - 1
        iteration = self._iteration.get(rank, 0)
        decision = FaultDecision()
        for index, event in enumerate(self.schedule.events):
            if event.kind is FaultKind.STRAGGLER:
                if event.matches_rank(rank) and event.in_window(iteration):
                    decision.delay_s += event.delay_s
                continue
            if not event.matches_collective(
                rank=rank, iteration=iteration, seq=seq, kind=kind
            ):
                continue
            if event.kind is FaultKind.DELAY:
                decision.delay_s += event.delay_s
                decision.duration_factor *= event.duration_factor
            elif event.kind is FaultKind.TRANSIENT:
                key = (index, rank)
                with self._lock:
                    left = self._transient_left.setdefault(key, event.failures)
                    if left > 0:
                        self._transient_left[key] = left - 1
                        decision.fail = True
            elif event.kind is FaultKind.HANG:
                # A hang pinned to one collective (or one iteration) is
                # one-shot: after the watchdog fires and recovery
                # re-issues, the event stays consumed.  A *windowed*
                # hang (no collective_index, no iteration pin) models a
                # dead rank: it re-fires on every matching collective,
                # so only coordinated abort or healing gets past it.
                one_shot = (
                    event.collective_index is not None
                    or event.iteration is not None
                )
                key = (index, rank)
                with self._lock:
                    if one_shot and key in self._fired:
                        continue
                    self._fired.add(key)
                decision.hang = True
            elif event.kind is FaultKind.DESYNC:
                key = (index, rank)
                with self._lock:
                    if key in self._fired:
                        continue
                    self._fired.add(key)
                decision.desync = True
        if not decision.benign:
            detail = []
            if decision.delay_s:
                detail.append(f"delay={decision.delay_s:.2e}s")
            if decision.duration_factor != 1.0:
                detail.append(f"x{decision.duration_factor:.2f}")
            if decision.fail:
                detail.append("transient-fail")
            if decision.hang:
                detail.append("hang")
            if decision.desync:
                detail.append("desync")
            self._log(
                InjectedFault(
                    FaultKind.DESYNC
                    if decision.desync
                    else FaultKind.HANG
                    if decision.hang
                    else FaultKind.TRANSIENT
                    if decision.fail
                    else FaultKind.DELAY,
                    rank,
                    iteration,
                    collective_index=seq,
                    detail=f"{kind}: " + ", ".join(detail),
                )
            )
        return decision
