"""Process-group abstraction and the ``Work`` handle.

Semantics follow PyTorch's ``ProcessGroupNCCL`` as described in
Sections 3.3.1–3.3.2 of the paper:

- every collective runs on a caller-supplied *communication stream* on
  the rank's device (FSDP passes one stream for both AllGather and
  ReduceScatter, reproducing the serialization that motivates backward
  prefetching);
- collectives are asynchronous with respect to the CPU and return a
  :class:`Work`; ``Work.wait()`` blocks the CPU thread, while
  ``Work.wait(stream)`` only inserts a GPU-side dependency — the
  distinction FSDP exploits to overlap communication with computation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cuda.device import Device
from repro.cuda.stream import Event, Stream
from repro.errors import DistributedError
from repro.hw.comm_model import CollectiveKind, CommModel
from repro.tensor import Tensor

__all__ = ["Work", "ProcessGroup", "ReduceOp"]


class ReduceOp:
    SUM = "sum"
    AVG = "avg"
    MAX = "max"


class Work:
    """Handle to an asynchronously running collective."""

    def __init__(self, event: Event):
        self._event = event

    def wait(self, stream: Optional[Stream] = None) -> None:
        """Block the CPU (no stream) or order a stream after the collective."""
        if stream is None:
            self._event.synchronize()
        else:
            stream.wait_event(self._event)

    def query(self) -> bool:
        return self._event.query()

    @property
    def completion_time(self) -> float:
        return self._event.time or 0.0


class ProcessGroup:
    """A group of ranks that can run collectives together."""

    def __init__(
        self,
        *,
        rank: int,
        ranks: Sequence[int],
        device: Device,
        comm_model: CommModel,
        concurrent_groups: int = 1,
    ):
        self.global_rank = rank
        self.ranks = tuple(ranks)
        if rank not in self.ranks:
            raise DistributedError(f"rank {rank} is not a member of group {self.ranks}")
        self.rank = self.ranks.index(rank)
        self.device = device
        self.comm_model = comm_model
        self.concurrent_groups = concurrent_groups
        # The group's internal communication stream (one per device, like
        # ProcessGroupNCCL's internal NCCL stream).
        self.comm_stream = device.new_stream(f"pg{id(self) & 0xFFFF:x}-comm")
        self.bytes_sent = 0
        self.cross_host_bytes = 0
        self.collective_count = 0

    @property
    def world_size(self) -> int:
        return len(self.ranks)

    # ------------------------------------------------------------------
    # Cost accounting shared by backends
    # ------------------------------------------------------------------
    def _collective_duration(
        self, kind: CollectiveKind, nbytes: int, shard_nbytes=None
    ) -> float:
        return self.comm_model.time(
            kind,
            nbytes,
            self.ranks,
            concurrent_groups=self.concurrent_groups,
            shard_nbytes=shard_nbytes,
        )

    def _account_traffic(self, kind: CollectiveKind, nbytes: int) -> None:
        world = self.world_size
        if world <= 1:
            return
        if kind is CollectiveKind.ALL_REDUCE:
            per_rank = 2.0 * nbytes * (world - 1) / world
        else:
            per_rank = nbytes * (world - 1) / world
        self.bytes_sent += int(per_rank)
        self.collective_count += 1
        topo = self.comm_model.topology
        if len(topo.hosts_spanned(self.ranks)) > 1:
            self.cross_host_bytes += int(per_rank)

    def _launch_collective(
        self,
        kind: CollectiveKind,
        nbytes: int,
        stream: Optional[Stream],
        *,
        collective_start: Optional[float] = None,
        shard_nbytes=None,
    ) -> Work:
        """Enqueue the collective kernel and return its Work handle.

        ``collective_start`` lets threaded backends impose the max of
        all ranks' ready times; the symmetric backend assumes peers are
        in lockstep with this rank.
        """
        stream = stream or self.comm_stream
        device = self.device
        device.consume_cpu(device.spec.kernel_launch_cpu)
        duration = self._collective_duration(kind, nbytes, shard_nbytes)
        issue = device.cpu_time()
        if collective_start is not None:
            issue = max(issue, collective_start)
        stream.enqueue(
            duration, issue_time=max(issue, stream.ready_time), label=kind.value
        )
        self._account_traffic(kind, nbytes)
        event = stream.record_event()
        return Work(event)

    # ------------------------------------------------------------------
    # Collective API (implemented by backends)
    # ------------------------------------------------------------------
    def all_gather_into_tensor(
        self, output: Tensor, input: Tensor, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def reduce_scatter_tensor(
        self, output: Tensor, input: Tensor, op: str = ReduceOp.SUM, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def all_reduce(
        self, tensor: Tensor, op: str = ReduceOp.SUM, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def broadcast(self, tensor: Tensor, src: int, *, stream: Optional[Stream] = None) -> Work:
        raise NotImplementedError

    def all_gather(
        self, outputs: Sequence[Tensor], input: Tensor, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def all_to_all_bytes(self, nbytes: int, *, stream: Optional[Stream] = None) -> Work:
        """Cost-only all-to-all of ``nbytes`` total payload.

        Used for the sparse-embedding exchange of the DHEN workload,
        where only the communication time and traffic matter to the
        simulation (the lookup itself is rank-local).
        """
        return self._launch_collective(CollectiveKind.ALL_TO_ALL, nbytes, stream)

    def barrier(self) -> None:
        raise NotImplementedError

    def all_reduce_scalar(self, value: float, op: str = ReduceOp.SUM) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared validation
    # ------------------------------------------------------------------
    def _check_all_gather_shapes(self, output: Tensor, input: Tensor) -> None:
        if output.numel != input.numel * self.world_size:
            raise DistributedError(
                f"all_gather_into_tensor: output numel {output.numel} != "
                f"world_size {self.world_size} * input numel {input.numel}"
            )

    def _check_reduce_scatter_shapes(self, output: Tensor, input: Tensor) -> None:
        if input.numel != output.numel * self.world_size:
            raise DistributedError(
                f"reduce_scatter_tensor: input numel {input.numel} != "
                f"world_size {self.world_size} * output numel {output.numel}"
            )
