"""Process-group abstraction and the ``Work`` handle.

Semantics follow PyTorch's ``ProcessGroupNCCL`` as described in
Sections 3.3.1–3.3.2 of the paper:

- every collective runs on a caller-supplied *communication stream* on
  the rank's device (FSDP passes one stream for both AllGather and
  ReduceScatter, reproducing the serialization that motivates backward
  prefetching);
- collectives are asynchronous with respect to the CPU and return a
  :class:`Work`; ``Work.wait()`` blocks the CPU thread, while
  ``Work.wait(stream)`` only inserts a GPU-side dependency — the
  distinction FSDP exploits to overlap communication with computation.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cuda import sanitizer
from repro.cuda.device import Device
from repro.cuda.stream import Event, Stream
from repro.distributed.fault import FaultDecision
from repro.errors import (
    CollectiveDesyncError,
    CollectiveFailedError,
    CollectiveTimeoutError,
    DistributedError,
    RankFailureError,
)
from repro.hw.comm_model import CollectiveKind, CommModel
from repro.resilience.desync import collective_signature, perturb_signature
from repro.tensor import Tensor

__all__ = [
    "Work",
    "ProcessGroup",
    "ReduceOp",
    "DEFAULT_COLLECTIVE_TIMEOUT",
    "retry_backoff",
]

#: Watchdog deadline for one collective, in seconds.  Interpreted on the
#: simulated clock by the symmetric backend and on the wall clock by the
#: threaded backend's rendezvous (where a crashed peer really does hang
#: the calling thread).
DEFAULT_COLLECTIVE_TIMEOUT = 60.0

#: First retry-with-backoff sleep after a transient collective failure
#: (simulated seconds; doubles per attempt like NCCL's comm re-init
#: backoff).
_RETRY_BACKOFF_BASE = 2e-3


def _mix64(x: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit value."""
    x &= 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def retry_backoff(seed: int, rank: int, attempt: int) -> float:
    """Jittered exponential backoff for transient-collective retries.

    A pure function of ``(seed, rank, attempt)``: deterministic for
    chaos replay, but *decorrelated across ranks* — the un-jittered
    ``base * 2**(attempt-1)`` schedule was identical on every rank, so
    synchronized retry storms hit the injector (and, in production, the
    network) in lockstep.  The jitter factor spans ``[0.5, 1.5)`` of
    the exponential step, keeping the expected schedule unchanged.
    """
    step = _RETRY_BACKOFF_BASE * (2 ** (attempt - 1))
    u = _mix64(_mix64(seed ^ 0x9E3779B97F4A7C15) + (rank << 20) + attempt)
    return step * (0.5 + (u >> 11) / float(1 << 53))


class ReduceOp:
    SUM = "sum"
    AVG = "avg"
    MAX = "max"


class Work:
    """Handle to an asynchronously running collective."""

    def __init__(self, event: Event, on_complete: Optional[Callable[[], None]] = None):
        self._event = event
        self._on_complete = on_complete
        self._completed = False

    def wait(self, stream: Optional[Stream] = None) -> None:
        """Block the CPU (no stream) or order a stream after the collective."""
        if stream is None:
            self._event.synchronize()
            self._mark_complete()
        else:
            stream.wait_event(self._event)

    def query(self) -> bool:
        done = self._event.query()
        if done:
            self._mark_complete()
        return done

    @property
    def completion_time(self) -> float:
        return self._event.time or 0.0

    def _mark_complete(self) -> None:
        if not self._completed:
            self._completed = True
            if self._on_complete is not None:
                self._on_complete()


class ProcessGroup:
    """A group of ranks that can run collectives together."""

    def __init__(
        self,
        *,
        rank: int,
        ranks: Sequence[int],
        device: Device,
        comm_model: CommModel,
        concurrent_groups: int = 1,
        timeout: float = DEFAULT_COLLECTIVE_TIMEOUT,
        max_collective_retries: int = 5,
    ):
        self.global_rank = rank
        self.ranks = tuple(ranks)
        if rank not in self.ranks:
            raise DistributedError(f"rank {rank} is not a member of group {self.ranks}")
        self.rank = self.ranks.index(rank)
        self.device = device
        self.comm_model = comm_model
        self.concurrent_groups = concurrent_groups
        self.timeout = timeout
        self.max_collective_retries = max_collective_retries
        # The group's internal communication stream (one per device, like
        # ProcessGroupNCCL's internal NCCL stream).
        self.comm_stream = device.new_stream(f"pg{id(self) & 0xFFFF:x}-comm")
        self.bytes_sent = 0
        self.cross_host_bytes = 0
        self.collective_count = 0
        self.retries_attempted = 0
        # NCCL-style watchdog bookkeeping: ops launched but not yet
        # observed complete by the CPU, keyed by a launch token.
        self._pending_ops: dict[int, tuple[str, Event]] = {}
        self._op_counter = 0
        # The group's membership is fixed, so whether it crosses hosts
        # is too — computed once instead of per collective.
        self._spans_hosts = len(comm_model.topology.hosts_spanned(self.ranks)) > 1

    @property
    def world_size(self) -> int:
        return len(self.ranks)

    # ------------------------------------------------------------------
    # Watchdog: pending-op queue, fault consultation, retry-with-backoff
    # ------------------------------------------------------------------
    def pending_collectives(self) -> int:
        """Depth of the launched-but-not-retired collective queue."""
        return len(self._pending_ops)

    def _track_launch(self, kind: CollectiveKind, event: Event) -> int:
        # Purge ops whose completion the CPU clock has already passed, so
        # GPU-side-only waits (``Work.wait(stream)``) don't pile up.
        now = self.device.cpu_time()
        done = [t for t, (_, e) in self._pending_ops.items() if e.time is not None and e.time <= now]
        for token in done:
            del self._pending_ops[token]
        token = self._op_counter
        self._op_counter += 1
        self._pending_ops[token] = (kind.value, event)
        return token

    def _retire_op(self, token: int) -> None:
        self._pending_ops.pop(token, None)

    def _timeout_error(self, kind: CollectiveKind) -> CollectiveTimeoutError:
        error = CollectiveTimeoutError(
            kind=kind.value,
            ranks=self.ranks,
            rank=self.global_rank,
            timeout=self.timeout,
            pending_ops=self.pending_collectives() + 1,
        )
        recorder = self.device.flight_recorder
        if recorder is not None:
            error.flight_dump = recorder.dump(now=self.device.cpu_time())
        return error

    def _attach_flight_dump(self, error):
        recorder = self.device.flight_recorder
        if recorder is not None:
            error.flight_dump = recorder.dump(now=self.device.cpu_time())
        return error

    def _abort_check(self, kind: CollectiveKind) -> None:
        """Fail fast when the communicator has been poisoned.

        Coordinated-abort semantics: once any rank's failure is
        declared, every subsequently issued collective on any group
        sharing the world raises immediately — no further simulated
        stall beyond the one watchdog interval the declarer paid.
        """
        abort = self.device.abort
        if abort is None or not abort.enabled or not abort.poisoned:
            return
        raise self._attach_flight_dump(
            RankFailureError(
                kind=kind.value,
                ranks=self.ranks,
                rank=self.global_rank,
                failed_ranks=abort.failed_ranks(),
                detection_s=abort.detection_s(),
            )
        )

    def _live_pending(self) -> int:
        """Pending ops the CPU clock has not yet observed complete."""
        now = self.device.cpu_time()
        return sum(
            1
            for _, e in self._pending_ops.values()
            if e.time is None or e.time > now
        )

    def _injector_seq(self) -> int:
        injector = self.device.fault_injector
        if injector is None:
            return max(self.collective_count, 0)
        # on_collective already advanced the counter for this launch.
        return max(injector.collective_seq(self.global_rank) - 1, 0)

    def _desync_error(
        self, kind: CollectiveKind, nbytes: int, dtype: str = ""
    ) -> CollectiveDesyncError:
        """Injected-desync verdict for the lockstep (symmetric) backend.

        The simulated peers are in lockstep by construction, so the
        true signature is what every peer reports; the injected rank's
        divergence is the deterministic perturbation.
        """
        seq = self._injector_seq()
        expected = collective_signature(
            kind=kind.value, nbytes=nbytes, dtype=dtype, ranks=self.ranks, seq=seq
        )
        return self._attach_flight_dump(
            CollectiveDesyncError(
                kind=kind.value,
                ranks=self.ranks,
                rank=self.global_rank,
                seq=seq,
                divergent_ranks=(self.global_rank,),
                expected=expected,
                actual=perturb_signature(expected),
            )
        )

    def _consult_faults(self, kind: CollectiveKind) -> FaultDecision:
        """Ask the installed fault injector about this collective.

        Transient failures are retried here with exponential backoff on
        the simulated clock; the sequence number advances once per
        logical collective, so every rank of an SPMD program stays
        aligned regardless of how many retries any rank performed.
        """
        injector = self.device.fault_injector
        if injector is None:
            return FaultDecision()
        attempt = 0
        while True:
            decision = injector.on_collective(
                rank=self.global_rank, kind=kind.value, ranks=self.ranks, attempt=attempt
            )
            if not decision.fail:
                return decision
            attempt += 1
            self.retries_attempted += 1
            if attempt > self.max_collective_retries:
                raise CollectiveFailedError(
                    kind=kind.value,
                    ranks=self.ranks,
                    rank=self.global_rank,
                    attempts=attempt,
                    retryable=False,
                )
            seed = getattr(injector.schedule, "seed", 0)
            backoff = retry_backoff(seed, self.global_rank, attempt)
            self.device.consume_cpu(backoff)
            self.device.emit_mark(f"retry:{kind.value}#{attempt}")

    # ------------------------------------------------------------------
    # Cost accounting shared by backends
    # ------------------------------------------------------------------
    def _collective_duration(
        self, kind: CollectiveKind, nbytes: int, shard_nbytes=None
    ) -> float:
        return self.comm_model.time(
            kind,
            nbytes,
            self.ranks,
            concurrent_groups=self.concurrent_groups,
            shard_nbytes=shard_nbytes,
        )

    def _order_after_caller(self, stream: Optional[Stream]) -> Stream:
        """Resolve the collective's stream with NCCL's implicit ordering.

        ProcessGroupNCCL runs collectives on its internal stream but
        first makes that stream wait for the caller's *current* stream,
        so tensors produced there are ready before the collective reads
        them.  Callers that pass an explicit ``stream`` (FSDP's overlap
        machinery) take full control and skip the edge.
        """
        if stream is not None:
            return stream
        stream = self.comm_stream
        current = self.device.current_stream
        if current is not None and current is not stream:
            stream.wait_stream(current)
        return stream

    def _note_data_use(
        self,
        stream: Optional[Stream],
        *,
        reads: Sequence[Tensor] = (),
        writes: Sequence[Tensor] = (),
    ) -> None:
        """Record the collective's tensor accesses on ``stream``.

        Feeds both the allocator's cross-stream reuse gate
        (``record_stream`` semantics) and, when enabled, the
        stream-order sanitizer.  Call after ``_launch_collective`` so
        the accesses attribute to the collective kernel just enqueued.
        """
        stream = stream or self.comm_stream
        device = self.device
        if not device.is_sim_gpu:
            return
        end = stream.ready_time
        for t in (*reads, *writes):
            block = t._storage.block
            if block is not None:
                device.allocator.record_use(block, stream, end)
        san = sanitizer.active()
        if san is not None:
            san.on_access(
                device,
                stream,
                reads=tuple(t._storage for t in reads),
                writes=tuple(t._storage for t in writes),
            )

    def _account_traffic(self, kind: CollectiveKind, nbytes: int) -> None:
        world = self.world_size
        if world <= 1:
            return
        if kind is CollectiveKind.ALL_REDUCE:
            per_rank = 2.0 * nbytes * (world - 1) / world
        else:
            per_rank = nbytes * (world - 1) / world
        self.bytes_sent += int(per_rank)
        self.collective_count += 1
        if self._spans_hosts:
            self.cross_host_bytes += int(per_rank)

    def _launch_collective(
        self,
        kind: CollectiveKind,
        nbytes: int,
        stream: Optional[Stream],
        *,
        collective_start: Optional[float] = None,
        shard_nbytes=None,
    ) -> Work:
        """Enqueue the collective kernel and return its Work handle.

        ``collective_start`` lets threaded backends impose the max of
        all ranks' ready times; the symmetric backend assumes peers are
        in lockstep with this rank.

        Consults the installed fault injector first: injected delays
        push the issue time, degraded links stretch the duration, and a
        hang (or a stretch past ``timeout``) trips the watchdog, which
        raises :class:`CollectiveTimeoutError` instead of completing.
        """
        self._abort_check(kind)
        decision = self._consult_faults(kind)
        if decision.desync:
            raise self._desync_error(kind, nbytes)
        stream = self._order_after_caller(stream)
        device = self.device
        device.consume_cpu(device.spec.kernel_launch_cpu)
        duration = self._collective_duration(kind, nbytes, shard_nbytes)
        duration *= decision.duration_factor
        issue = device.cpu_time()
        if collective_start is not None:
            issue = max(issue, collective_start)
        issue += decision.delay_s
        recorder = device.flight_recorder
        profiler = device.profiler
        record = None
        if recorder is not None:
            record = recorder.record_issue(
                rank=self.global_rank,
                kind=kind.value,
                nbytes=nbytes,
                group_ranks=self.ranks,
                stream=stream.name,
                time=issue,
                scope=profiler.scope if profiler is not None else "",
            )
        if decision.hang or duration > self.timeout:
            # The collective would never complete (or not before the
            # deadline): the watchdog blocks until the deadline, then
            # aborts with a typed error instead of hanging forever.  The
            # flight record stays un-launched — the dump will show this
            # rank issued but never reached the kernel.
            live_pending = self._live_pending()
            device.advance_cpu_to(max(issue, stream.ready_time) + self.timeout)
            device.emit_mark(f"watchdog:{kind.value}")
            abort = device.abort
            if abort is not None and abort.enabled:
                # Coordinated abort: one watchdog interval covers the
                # whole teardown — the declaration poisons every group
                # sharing the world, so pending ops are abandoned, not
                # drained, and later launches fail fast.
                abort.declare(
                    self.global_rank,
                    sim_time=device.cpu_time(),
                    detection_s=self.timeout,
                )
            elif abort is not None:
                # Uncoordinated teardown (the negative control): with
                # no abort propagation, every already-pending collective
                # must be drained to its own watchdog deadline, one
                # serial timeout each.
                for _ in range(live_pending):
                    device.consume_cpu(self.timeout)
                    device.emit_mark(f"watchdog-drain:{kind.value}")
            raise self._timeout_error(kind)
        start, end = stream.enqueue(
            duration, issue_time=max(issue, stream.ready_time), label=kind.value
        )
        if record is not None:
            recorder.record_launch(record, start, end)
            if profiler is not None:
                profiler.on_collective(record)
        self._account_traffic(kind, nbytes)
        event = stream.record_event()
        token = self._track_launch(kind, event)
        return Work(event, on_complete=lambda: self._retire_op(token))

    # ------------------------------------------------------------------
    # Collective API (implemented by backends)
    # ------------------------------------------------------------------
    def all_gather_into_tensor(
        self, output: Tensor, input: Tensor, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def reduce_scatter_tensor(
        self, output: Tensor, input: Tensor, op: str = ReduceOp.SUM, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def reduce_scatter(
        self,
        output: Tensor,
        input: Tensor,
        input_sizes: Sequence[int],
        op: str = ReduceOp.SUM,
        *,
        stream: Optional[Stream] = None,
    ) -> Work:
        """Reduce-scatter with *uneven* per-rank output sizes.

        ``input`` is the 1-D concatenation of ``world_size`` segments of
        ``input_sizes[r]`` elements each; after the elementwise
        reduction rank ``r`` receives segment ``r`` in ``output``
        (``output.numel == input_sizes[rank]``, possibly zero).  The
        per-parameter backend uses this for exact dim-0 shards whose
        tail chunks are short.
        """
        raise NotImplementedError

    def all_reduce(
        self, tensor: Tensor, op: str = ReduceOp.SUM, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def broadcast(self, tensor: Tensor, src: int, *, stream: Optional[Stream] = None) -> Work:
        raise NotImplementedError

    def all_gather(
        self, outputs: Sequence[Tensor], input: Tensor, *, stream: Optional[Stream] = None
    ) -> Work:
        raise NotImplementedError

    def all_gather_into_tensor_coalesced(
        self,
        pairs: Sequence[tuple[Tensor, Tensor]],
        *,
        stream: Optional[Stream] = None,
    ) -> Work:
        """Gather several ``(output, input)`` pairs with ONE collective.

        Semantically identical to issuing ``all_gather_into_tensor`` per
        pair (each output is the rank-major concatenation of the pair's
        inputs), but the launch overhead and ring latency are paid once
        for the whole bucket — the Figure-2 payoff the compile passes
        target.  The fault injector is consulted once: a bucket is one
        logical collective, keeping SPMD fault sequences aligned.
        """
        raise NotImplementedError

    def reduce_scatter_tensor_coalesced(
        self,
        pairs: Sequence[tuple[Tensor, Tensor]],
        op: str = ReduceOp.SUM,
        *,
        stream: Optional[Stream] = None,
    ) -> Work:
        """Reduce-scatter several ``(output, input)`` pairs at once.

        Bitwise identical to per-pair ``reduce_scatter_tensor``: the
        reduction is elementwise, so reducing the concatenation of the
        inputs and slicing per-pair rank segments yields exactly the
        same values as separate collectives.
        """
        raise NotImplementedError

    def all_to_all_bytes(self, nbytes: int, *, stream: Optional[Stream] = None) -> Work:
        """Cost-only all-to-all of ``nbytes`` total payload.

        Used for the sparse-embedding exchange of the DHEN workload,
        where only the communication time and traffic matter to the
        simulation (the lookup itself is rank-local).
        """
        return self._launch_collective(CollectiveKind.ALL_TO_ALL, nbytes, stream)

    def barrier(self) -> None:
        raise NotImplementedError

    def all_reduce_scalar(self, value: float, op: str = ReduceOp.SUM) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared validation
    # ------------------------------------------------------------------
    def _check_all_gather_shapes(self, output: Tensor, input: Tensor) -> None:
        if output.numel != input.numel * self.world_size:
            raise DistributedError(
                f"all_gather_into_tensor: output numel {output.numel} != "
                f"world_size {self.world_size} * input numel {input.numel}"
            )

    def _check_reduce_scatter_shapes(self, output: Tensor, input: Tensor) -> None:
        if input.numel != output.numel * self.world_size:
            raise DistributedError(
                f"reduce_scatter_tensor: input numel {input.numel} != "
                f"world_size {self.world_size} * output numel {output.numel}"
            )

    def _check_coalesced_pairs(
        self, pairs: Sequence[tuple[Tensor, Tensor]], *, kind: str
    ) -> None:
        if not pairs:
            raise DistributedError(f"{kind}: empty coalescing bucket")
        check = (
            self._check_all_gather_shapes
            if kind == "all_gather_into_tensor_coalesced"
            else self._check_reduce_scatter_shapes
        )
        for output, input in pairs:
            check(output, input)

    def _check_reduce_scatter_uneven_shapes(
        self, output: Tensor, input: Tensor, input_sizes: Sequence[int]
    ) -> None:
        if len(input_sizes) != self.world_size:
            raise DistributedError(
                f"reduce_scatter: {len(input_sizes)} segment sizes for a "
                f"group of {self.world_size} ranks"
            )
        if sum(input_sizes) != input.numel:
            raise DistributedError(
                f"reduce_scatter: segment sizes sum to {sum(input_sizes)} but "
                f"input has {input.numel} elements"
            )
        if output.numel != input_sizes[self.rank]:
            raise DistributedError(
                f"reduce_scatter: output numel {output.numel} != this rank's "
                f"segment size {input_sizes[self.rank]}"
            )
