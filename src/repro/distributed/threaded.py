"""Threaded SPMD backend: N ranks as N python threads, real data.

Used by tests and examples to check numerical equivalence (FSDP vs
local training) with the simulated clocks still advancing: each
collective's start time is the max of the member ranks' communication
stream frontiers, like a real NCCL collective that cannot begin until
every participant has joined.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import dtypes
from repro.cuda.stream import Stream
from repro.distributed.process_group import ProcessGroup, ReduceOp, Work
from repro.distributed.rendezvous import (
    Rendezvous,
    RendezvousAbortedError,
    RendezvousTimeoutError,
)
from repro.errors import CollectiveDesyncError, DistributedError, RankFailureError
from repro.hw.comm_model import CollectiveKind
from repro.resilience.desync import (
    DesyncVerdict,
    collective_signature,
    compare_signatures,
    perturb_signature,
)
from repro.tensor import Tensor

__all__ = ["ThreadedProcessGroup"]


def _payload_array(t: Tensor) -> Optional[np.ndarray]:
    if not t.is_materialized:
        return None
    return np.ascontiguousarray(t._np.reshape(-1), dtype=np.float64)


class ThreadedProcessGroup(ProcessGroup):
    """Process group whose collectives rendezvous across rank threads."""

    def __init__(self, *, rendezvous: Rendezvous, **kwargs):
        super().__init__(**kwargs)
        self.rendezvous = rendezvous
        # Per-group launch counter for desync signatures.  Each rank
        # holds its own group instance, and SPMD programs issue group
        # collectives in lockstep, so counters agree across ranks
        # exactly when the program is in sync — which is the check.
        self._desync_seq = 0

    # ------------------------------------------------------------------
    # Core rendezvous-collective template
    # ------------------------------------------------------------------
    def _run(
        self,
        kind: CollectiveKind,
        nbytes: int,
        data: Optional[np.ndarray],
        combine_data,
        stream: Optional[Stream],
        shard_nbytes=None,
        dtype_name: str = "",
    ) -> tuple[Work, object]:
        """One rendezvous collective, with fault injection and watchdog.

        The fault injector is consulted *before* joining the rendezvous:
        transient failures retry locally (simulated backoff, no wall
        time), so the rank simply arrives late; injected delays push
        this rank's ready time, which every peer observes as a late
        collective start.  A hung rank never joins — its peers block in
        the rendezvous until the group ``timeout`` (wall clock) expires
        and every rank surfaces a typed :class:`CollectiveTimeoutError`
        instead of deadlocking.  Payload combination is untouched by any
        of this: faults change timing, never math.

        With a coordinated-abort latch installed, a hung rank *declares*
        itself on watchdog expiry: blocked peers wake immediately (the
        latch notifies the rendezvous condition) and raise
        :class:`RankFailureError` after charging only the declarer's
        watchdog interval; later launches fail fast in
        :meth:`_abort_check`.  With a desync checker installed, every
        payload carries a ``(kind, nbytes, dtype, group, seq)``
        signature, cross-checked before combining.
        """
        self._abort_check(kind)
        seq = self._desync_seq
        self._desync_seq += 1
        decision = self._consult_faults(kind)
        if decision.hang:
            # This rank's collective never completes.  Its own watchdog
            # trips after ``timeout`` simulated seconds; peers trip
            # their wall-clock rendezvous deadline below — or, with
            # coordinated abort, wake on this declaration instead.
            self.device.advance_cpu_to(self.device.cpu_time() + self.timeout)
            self.device.emit_mark(f"watchdog:{kind.value}")
            abort = self.device.abort
            if abort is not None and abort.enabled:
                abort.declare(
                    self.global_rank,
                    sim_time=self.device.cpu_time(),
                    detection_s=self.timeout,
                )
            raise self._timeout_error(kind)
        stream = self._order_after_caller(stream)
        device = self.device
        device.consume_cpu(device.spec.kernel_launch_cpu)
        local_ready = max(device.cpu_time(), stream.ready_time) + decision.delay_s
        signature = None
        if device.desync_checker:
            signature = collective_signature(
                kind=kind.value,
                nbytes=nbytes,
                dtype=dtype_name,
                ranks=self.ranks,
                seq=seq,
            )
            if decision.desync:
                signature = perturb_signature(signature)
        elif decision.desync:
            # Negative control without the checker installed: the
            # divergence is known only locally, so surface it directly
            # (a real deployment would deadlock here instead).
            raise self._desync_error(kind, nbytes, dtype_name)

        def combiner(payloads):
            times = [t for t, _, _ in payloads]
            sigs = [s for _, _, s in payloads]
            if all(s is not None for s in sigs):
                verdict = compare_signatures(sigs)
                if verdict is not None:
                    return (max(times), verdict)
            datas = [d for _, d, _ in payloads]
            combined = combine_data(datas) if combine_data is not None else None
            return (max(times), combined)

        recorder = device.flight_recorder
        profiler = device.profiler
        record = None
        if recorder is not None:
            # Issue is recorded *before* the rendezvous: a rank blocked
            # waiting for a hung peer shows up as issued-but-unlaunched,
            # while the hung peer (which raised above) never issues —
            # the dump's "missing ranks" for this seq.
            record = recorder.record_issue(
                rank=self.global_rank,
                kind=kind.value,
                nbytes=nbytes,
                group_ranks=self.ranks,
                stream=stream.name,
                time=local_ready,
                scope=profiler.scope if profiler is not None else "",
            )
        try:
            start, combined = self.rendezvous.exchange(
                self.rank,
                (local_ready, data, signature),
                combiner,
                timeout=self.timeout,
                abort=device.abort,
            )
        except RendezvousAbortedError:
            # A peer's watchdog declared a failure mid-round: leave
            # immediately (wall clock) and charge the simulated clock
            # only up to the declaration point — the whole group pays
            # ~one watchdog interval total, not one per survivor.
            abort = device.abort
            device.emit_mark(f"abort:{kind.value}")
            device.advance_cpu_to(max(device.cpu_time(), abort.declared_time()))
            raise self._attach_flight_dump(
                RankFailureError(
                    kind=kind.value,
                    ranks=self.ranks,
                    rank=self.global_rank,
                    failed_ranks=abort.failed_ranks(),
                    detection_s=abort.detection_s(),
                )
            ) from None
        except RendezvousTimeoutError as err:
            # Uncoordinated fallback: this survivor burned the full
            # deadline on its own watchdog.
            device.emit_mark(f"watchdog:{kind.value}")
            device.advance_cpu_to(device.cpu_time() + self.timeout)
            raise self._timeout_error(kind) from err
        if isinstance(combined, DesyncVerdict):
            raise self._verdict_error(kind, combined)
        duration = self._collective_duration(kind, nbytes, shard_nbytes)
        duration *= decision.duration_factor
        launch_start, launch_end = stream.enqueue(duration, issue_time=start, label=kind.value)
        if record is not None:
            recorder.record_launch(record, launch_start, launch_end)
            if profiler is not None:
                profiler.on_collective(record)
        self._account_traffic(kind, nbytes)
        event = stream.record_event()
        token = self._track_launch(kind, event)
        return Work(event, on_complete=lambda: self._retire_op(token)), combined

    def _verdict_error(
        self, kind: CollectiveKind, verdict: DesyncVerdict
    ) -> CollectiveDesyncError:
        """Convert a cross-rank signature verdict into a typed error."""
        divergent_global = tuple(
            self.ranks[m] for m in verdict.divergent_members
        )
        if self.rank in verdict.divergent_members:
            actual = verdict.actual_for(self.rank)
        else:
            actual = verdict.actual_for(verdict.divergent_members[0])
        return self._attach_flight_dump(
            CollectiveDesyncError(
                kind=kind.value,
                ranks=self.ranks,
                rank=self.global_rank,
                seq=verdict.expected[4],
                divergent_ranks=divergent_global,
                expected=verdict.expected,
                actual=actual,
            )
        )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def all_gather_into_tensor(self, output, input, *, stream=None) -> Work:
        self._check_all_gather_shapes(output, input)
        nbytes = output.numel * input.dtype.itemsize

        work, gathered = self._run(
            CollectiveKind.ALL_GATHER_BASE,
            nbytes,
            _payload_array(input),
            _concat_or_none,
            stream,
            dtype_name=input.dtype.name,
        )
        if gathered is not None and output.is_materialized:
            output._np.reshape(-1)[...] = dtypes.quantize(gathered, output.dtype)
        self._note_data_use(stream, reads=(input,), writes=(output,))
        return work

    def reduce_scatter_tensor(self, output, input, op=ReduceOp.SUM, *, stream=None) -> Work:
        self._check_reduce_scatter_shapes(output, input)
        nbytes = input.numel * input.dtype.itemsize

        def combine(datas):
            if any(d is None for d in datas):
                return None
            total = np.sum(datas, axis=0)
            if op == ReduceOp.AVG:
                total = total / self.world_size
            return total

        work, reduced = self._run(
            CollectiveKind.REDUCE_SCATTER,
            nbytes,
            _payload_array(input),
            combine,
            stream,
            dtype_name=input.dtype.name,
        )
        if reduced is not None and output.is_materialized:
            shard = reduced[self.rank * output.numel : (self.rank + 1) * output.numel]
            output._np.reshape(-1)[...] = dtypes.quantize(shard, output.dtype)
        self._note_data_use(stream, reads=(input,), writes=(output,))
        return work

    def all_gather_into_tensor_coalesced(self, pairs, *, stream=None) -> Work:
        self._check_coalesced_pairs(pairs, kind="all_gather_into_tensor_coalesced")
        nbytes = sum(o.numel * i.dtype.itemsize for o, i in pairs)
        payloads = [_payload_array(i) for _, i in pairs]
        data = None if any(p is None for p in payloads) else np.concatenate(payloads)

        def combine(datas):
            if any(d is None for d in datas):
                return None
            return list(datas)  # keep per-rank arrays; sliced per pair below

        work, per_rank = self._run(
            CollectiveKind.ALL_GATHER_BASE,
            nbytes,
            data,
            combine,
            stream,
            dtype_name=pairs[0][1].dtype.name,
        )
        if per_rank is not None:
            offset = 0
            for output, input in pairs:
                n = input.numel
                if output.is_materialized:
                    gathered = np.concatenate([d[offset : offset + n] for d in per_rank])
                    output._np.reshape(-1)[...] = dtypes.quantize(gathered, output.dtype)
                offset += n
        self._note_data_use(
            stream,
            reads=tuple(i for _, i in pairs),
            writes=tuple(o for o, _ in pairs),
        )
        return work

    def reduce_scatter_tensor_coalesced(self, pairs, op=ReduceOp.SUM, *, stream=None) -> Work:
        self._check_coalesced_pairs(pairs, kind="reduce_scatter_tensor_coalesced")
        nbytes = sum(i.numel * i.dtype.itemsize for _, i in pairs)
        payloads = [_payload_array(i) for _, i in pairs]
        data = None if any(p is None for p in payloads) else np.concatenate(payloads)

        def combine(datas):
            if any(d is None for d in datas):
                return None
            # Elementwise reduction of the concatenation == per-pair
            # reductions, so coalescing is bitwise-neutral.
            total = np.sum(datas, axis=0)
            if op == ReduceOp.AVG:
                total = total / self.world_size
            return total

        work, reduced = self._run(
            CollectiveKind.REDUCE_SCATTER,
            nbytes,
            data,
            combine,
            stream,
            dtype_name=pairs[0][1].dtype.name,
        )
        if reduced is not None:
            offset = 0
            for output, input in pairs:
                n = output.numel
                if output.is_materialized:
                    shard = reduced[offset + self.rank * n : offset + (self.rank + 1) * n]
                    output._np.reshape(-1)[...] = dtypes.quantize(shard, output.dtype)
                offset += input.numel
        self._note_data_use(
            stream,
            reads=tuple(i for _, i in pairs),
            writes=tuple(o for o, _ in pairs),
        )
        return work

    def reduce_scatter(
        self, output, input, input_sizes, op=ReduceOp.SUM, *, stream=None
    ) -> Work:
        self._check_reduce_scatter_uneven_shapes(output, input, input_sizes)
        sizes = list(input_sizes)
        even = len(set(sizes)) == 1
        kind = (
            CollectiveKind.REDUCE_SCATTER
            if even
            else CollectiveKind.REDUCE_SCATTER_UNEVEN
        )
        nbytes = input.numel * input.dtype.itemsize
        shard_nbytes = None if even else [s * input.dtype.itemsize for s in sizes]
        offset = sum(sizes[: self.rank])

        def combine(datas):
            if any(d is None for d in datas):
                return None
            total = np.sum(datas, axis=0)
            if op == ReduceOp.AVG:
                total = total / self.world_size
            return total

        work, reduced = self._run(
            kind,
            nbytes,
            _payload_array(input),
            combine,
            stream,
            shard_nbytes=shard_nbytes,
            dtype_name=input.dtype.name,
        )
        if reduced is not None and output.is_materialized:
            shard = reduced[offset : offset + output.numel]
            output._np.reshape(-1)[...] = dtypes.quantize(shard, output.dtype)
        self._note_data_use(stream, reads=(input,), writes=(output,))
        return work

    def all_reduce(self, tensor, op=ReduceOp.SUM, *, stream=None) -> Work:
        nbytes = tensor.numel * tensor.dtype.itemsize

        def combine(datas):
            if any(d is None for d in datas):
                return None
            if op == ReduceOp.MAX:
                return np.max(datas, axis=0)
            total = np.sum(datas, axis=0)
            if op == ReduceOp.AVG:
                total = total / self.world_size
            return total

        work, reduced = self._run(
            CollectiveKind.ALL_REDUCE,
            nbytes,
            _payload_array(tensor),
            combine,
            stream,
            dtype_name=tensor.dtype.name,
        )
        if reduced is not None and tensor.is_materialized:
            tensor._np.reshape(-1)[...] = dtypes.quantize(reduced, tensor.dtype)
        self._note_data_use(stream, reads=(tensor,), writes=(tensor,))
        return work

    def broadcast(self, tensor, src: int, *, stream=None) -> Work:
        if src not in self.ranks:
            raise DistributedError(f"broadcast src {src} not in group {self.ranks}")
        src_index = self.ranks.index(src)
        nbytes = tensor.numel * tensor.dtype.itemsize

        def combine(datas):
            return datas[src_index]

        work, data = self._run(
            CollectiveKind.BROADCAST,
            nbytes,
            _payload_array(tensor),
            combine,
            stream,
            dtype_name=tensor.dtype.name,
        )
        if data is not None and tensor.is_materialized:
            tensor._np.reshape(-1)[...] = dtypes.quantize(data, tensor.dtype)
        self._note_data_use(stream, reads=(tensor,), writes=(tensor,))
        return work

    def all_gather(self, outputs: Sequence[Tensor], input: Tensor, *, stream=None) -> Work:
        if len(outputs) != self.world_size:
            raise DistributedError("all_gather needs one output tensor per rank")
        sizes = [o.numel for o in outputs]
        even = len(set(sizes)) == 1 and sizes[0] == input.numel
        kind = CollectiveKind.ALL_GATHER_LIST if even else CollectiveKind.ALL_GATHER_UNEVEN
        nbytes = sum(sizes) * input.dtype.itemsize
        shard_nbytes = [s * input.dtype.itemsize for s in sizes]

        def combine(datas):
            if any(d is None for d in datas):
                return None
            return list(datas)

        work, shards = self._run(
            kind,
            nbytes,
            _payload_array(input),
            combine,
            stream,
            shard_nbytes=shard_nbytes,
            dtype_name=input.dtype.name,
        )
        if shards is not None:
            for out, shard in zip(outputs, shards):
                if out.is_materialized:
                    out._np.reshape(-1)[...] = dtypes.quantize(shard, out.dtype)
        self._note_data_use(stream, reads=(input,), writes=tuple(outputs))
        return work

    def barrier(self) -> None:
        work, _ = self._run(CollectiveKind.BROADCAST, 0, None, None, None)
        work.wait()

    def all_reduce_scalar(self, value: float, op: str = ReduceOp.SUM) -> float:
        def combiner(payloads):
            values = [v for _, v in payloads]
            times = [t for t, _ in payloads]
            if op == ReduceOp.MAX:
                result = max(values)
            elif op == ReduceOp.AVG:
                result = sum(values) / len(values)
            else:
                result = sum(values)
            return (max(times), result)

        self._abort_check(CollectiveKind.ALL_REDUCE)
        try:
            start, result = self.rendezvous.exchange(
                self.rank, (self.device.cpu_time(), float(value)), combiner,
                timeout=self.timeout,
                abort=self.device.abort,
            )
        except RendezvousAbortedError:
            abort = self.device.abort
            raise self._attach_flight_dump(
                RankFailureError(
                    kind=CollectiveKind.ALL_REDUCE.value,
                    ranks=self.ranks,
                    rank=self.global_rank,
                    failed_ranks=abort.failed_ranks(),
                    detection_s=abort.detection_s(),
                )
            ) from None
        except RendezvousTimeoutError as err:
            raise self._timeout_error(CollectiveKind.ALL_REDUCE) from err
        self.device.advance_cpu_to(start + self.comm_model.launch_overhead)
        return result


def _concat_or_none(datas):
    if any(d is None for d in datas):
        return None
    return np.concatenate(datas)
