"""Exception types shared across the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OutOfMemoryError",
    "DeviceError",
    "DistributedError",
    "CollectiveError",
    "CollectiveTimeoutError",
    "CollectiveFailedError",
    "RankFailureError",
    "CollectiveDesyncError",
    "RankCrashedError",
    "FsdpError",
    "ShardingError",
    "ShardLayoutError",
    "DeferredInitError",
    "CheckpointError",
    "CheckpointCorruptionError",
    "StreamOrderViolation",
    "ExecOrderViolation",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DeviceError(ReproError):
    """Raised on invalid simulated-device operations."""


class OutOfMemoryError(DeviceError):
    """Raised when a simulated device cannot serve an allocation.

    Mirrors ``torch.cuda.OutOfMemoryError``: raised after the caching
    allocator has already attempted a cudaMalloc retry (freeing all
    cached blocks) and still cannot satisfy the request.
    """

    def __init__(self, device: object, requested: int, capacity: int, reserved: int):
        self.device = device
        self.requested = requested
        self.capacity = capacity
        self.reserved = reserved
        super().__init__(
            f"CUDA out of memory on {device}: tried to allocate "
            f"{requested / 2**30:.2f} GiB (capacity {capacity / 2**30:.2f} GiB, "
            f"reserved {reserved / 2**30:.2f} GiB)"
        )


class DistributedError(ReproError):
    """Raised on process-group misuse (rank mismatch, shape mismatch...)."""


class CollectiveError(DistributedError):
    """Base class for runtime failures of a launched collective."""


class CollectiveTimeoutError(CollectiveError):
    """A collective exceeded its deadline and the watchdog aborted it.

    Mirrors ProcessGroupNCCL's watchdog behaviour: instead of hanging
    the rank forever (the failure mode of a crashed or diverged peer),
    the group raises a typed error naming the collective kind, the
    member ranks, the configured deadline and the depth of the
    pending-op queue at abort time.
    """

    def __init__(
        self,
        *,
        kind: str,
        ranks: tuple,
        rank: int,
        timeout: float,
        pending_ops: int,
    ):
        self.kind = kind
        self.ranks = tuple(ranks)
        self.rank = rank
        self.timeout = timeout
        self.pending_ops = pending_ops
        # Filled by the process group when a flight recorder is
        # installed: a repro.profiler.FlightDump naming the in-flight
        # collectives and which ranks are missing from each.
        self.flight_dump = None
        super().__init__(
            f"collective {kind!r} on ranks {self.ranks} timed out after "
            f"{timeout:g}s on rank {rank} (watchdog abort; "
            f"{pending_ops} pending op(s) in queue)"
        )


class CollectiveFailedError(CollectiveError):
    """A collective failed to complete.

    ``retryable`` distinguishes transient faults (e.g. a link flap that
    a retry-with-backoff can ride out) from permanent ones (retry
    budget exhausted).
    """

    def __init__(self, *, kind: str, ranks: tuple, rank: int, attempts: int, retryable: bool):
        self.kind = kind
        self.ranks = tuple(ranks)
        self.rank = rank
        self.attempts = attempts
        self.retryable = retryable
        flavour = "transient" if retryable else "permanent"
        super().__init__(
            f"collective {kind!r} on ranks {self.ranks} failed on rank {rank} "
            f"after {attempts} attempt(s) ({flavour})"
        )


class RankFailureError(CollectiveError):
    """A peer rank was declared dead and the communicator was aborted.

    Mirrors NCCL's communicator abort: once any rank's watchdog (or
    health lease) declares a peer failed, the whole communicator is
    poisoned — in-flight collectives on every surviving rank wake
    immediately and subsequently issued collectives fail fast, instead
    of each survivor serially burning a full watchdog timeout per
    pending op.  Names the dead rank(s) so the controller can plan a
    targeted recovery (e.g. peer healing of exactly those ranks).
    """

    def __init__(
        self,
        *,
        kind: str,
        ranks: tuple,
        rank: int,
        failed_ranks: tuple,
        detection_s: float = 0.0,
    ):
        self.kind = kind
        self.ranks = tuple(ranks)
        self.rank = rank
        self.failed_ranks = tuple(sorted(failed_ranks))
        self.detection_s = detection_s
        # Filled by the process group when a flight recorder is
        # installed (same channel as CollectiveTimeoutError).
        self.flight_dump = None
        noun = "rank" if len(self.failed_ranks) == 1 else "ranks"
        super().__init__(
            f"collective {kind!r} on ranks {self.ranks} aborted on rank "
            f"{rank}: {noun} {self.failed_ranks} declared failed "
            f"(coordinated abort, detected in {detection_s:g}s)"
        )


class CollectiveDesyncError(CollectiveError):
    """Cross-rank collective signature mismatch (desynchronized ranks).

    The pre-launch desync check exchanges a per-collective signature
    ``(kind, nbytes, dtype, group ranks, seq)`` across the group —
    the TORCH_DISTRIBUTED_DEBUG=DETAIL analog.  A mismatch means the
    SPMD program diverged (conditional collective, shape drift,
    mismatched wrapping); launching would deadlock or silently corrupt
    data, so the group raises instead, naming the divergent ranks and
    both signatures.
    """

    def __init__(
        self,
        *,
        kind: str,
        ranks: tuple,
        rank: int,
        seq: int,
        divergent_ranks: tuple,
        expected: tuple,
        actual: tuple,
    ):
        self.kind = kind
        self.ranks = tuple(ranks)
        self.rank = rank
        self.seq = seq
        self.divergent_ranks = tuple(sorted(divergent_ranks))
        self.expected = tuple(expected)
        self.actual = tuple(actual)
        # Filled by the process group when a flight recorder is
        # installed.
        self.flight_dump = None
        noun = "rank" if len(self.divergent_ranks) == 1 else "ranks"
        super().__init__(
            f"collective desync at seq {seq} on ranks {self.ranks}: "
            f"{noun} {self.divergent_ranks} diverged "
            f"(expected signature {self.expected!r}, got {self.actual!r})"
        )


class RankCrashedError(DistributedError):
    """An injected (or detected) rank crash.

    Elastic training loops catch this, restore the latest sharded
    checkpoint and resume; everything else should let it propagate.
    """

    def __init__(self, *, rank: int, iteration: int):
        self.rank = rank
        self.iteration = iteration
        super().__init__(f"rank {rank} crashed at iteration {iteration}")


class FsdpError(ReproError):
    """Raised on invalid FSDP configuration or runtime state."""


class ShardingError(FsdpError):
    """Raised when a sharding configuration is inconsistent."""


class ShardLayoutError(FsdpError, KeyError):
    """A sharded state dict does not match the model's shard layout.

    Raised instead of silently mis-loading when a checkpoint was taken
    with a different world size, wrap granularity or unit composition
    than the model being restored.  Such checkpoints must go through the
    resharding loader (:func:`repro.checkpoint.load_resharded`), which
    reassembles per-FQN logical tensors from the saved shard metadata.

    Subclasses :class:`KeyError` for backward compatibility with callers
    that treated a missing shard key as a plain dictionary miss.
    """

    def __init__(self, message: str, *, key: str = "", expected=None, actual=None):
        self.key = key
        self.expected = expected
        self.actual = actual
        # Bypass KeyError's repr-quoting of the message.
        Exception.__init__(self, message)

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class DeferredInitError(FsdpError):
    """Raised when deferred initialization cannot record or replay."""


class CheckpointError(ReproError):
    """Base class for distributed-checkpoint storage failures."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint shard failed its integrity check at load time.

    Carries the iteration, the storage path and the expected/actual
    checksums.  The store quarantines the whole checkpoint and recovery
    proceeds from the last *verified-good* iteration instead.
    """

    def __init__(
        self,
        message: str,
        *,
        iteration: int = -1,
        path: str = "",
        expected_crc: int = 0,
        actual_crc: int = 0,
    ):
        self.iteration = iteration
        self.path = path
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc
        super().__init__(message)


class StreamOrderViolation(ReproError):
    """A cross-stream ordering hazard detected by ``repro.cuda.sanitizer``.

    Carries both racing accesses (``prev`` and ``cur``, as
    ``LaunchRecord`` instances naming the kernel, stream and launch
    site) plus a short description of the storage involved.  ``kind``
    is one of the violation taxonomy entries documented in DESIGN.md:
    ``read-after-write``, ``write-after-write``, ``write-after-read``,
    ``use-after-free``, ``unretired-block-reuse`` or
    ``exec-order-divergence``.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str,
        prev: object = None,
        cur: object = None,
        storage: str = "",
    ):
        self.kind = kind
        self.prev = prev
        self.cur = cur
        self.storage = storage
        super().__init__(message)


class ExecOrderViolation(StreamOrderViolation):
    """FSDP units unsharded in a different order than the recorded warmup
    iteration — prefetching would target the wrong unit (Section 3.3.2).
    """

    def __init__(
        self,
        message: str,
        *,
        expected: object = None,
        actual: object = None,
        position: object = None,
    ):
        super().__init__(message, kind="exec-order-divergence")
        self.expected = expected
        self.actual = actual
        self.position = position
