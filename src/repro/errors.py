"""Exception types shared across the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OutOfMemoryError",
    "DeviceError",
    "DistributedError",
    "FsdpError",
    "ShardingError",
    "DeferredInitError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DeviceError(ReproError):
    """Raised on invalid simulated-device operations."""


class OutOfMemoryError(DeviceError):
    """Raised when a simulated device cannot serve an allocation.

    Mirrors ``torch.cuda.OutOfMemoryError``: raised after the caching
    allocator has already attempted a cudaMalloc retry (freeing all
    cached blocks) and still cannot satisfy the request.
    """

    def __init__(self, device: object, requested: int, capacity: int, reserved: int):
        self.device = device
        self.requested = requested
        self.capacity = capacity
        self.reserved = reserved
        super().__init__(
            f"CUDA out of memory on {device}: tried to allocate "
            f"{requested / 2**30:.2f} GiB (capacity {capacity / 2**30:.2f} GiB, "
            f"reserved {reserved / 2**30:.2f} GiB)"
        )


class DistributedError(ReproError):
    """Raised on process-group misuse (rank mismatch, shape mismatch...)."""


class FsdpError(ReproError):
    """Raised on invalid FSDP configuration or runtime state."""


class ShardingError(FsdpError):
    """Raised when a sharding configuration is inconsistent."""


class DeferredInitError(FsdpError):
    """Raised when deferred initialization cannot record or replay."""
