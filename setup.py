"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this
legacy path; PEP 660 editable installs work too where wheel exists.
"""

from setuptools import setup

setup()
